"""A001 unguarded-shared-mutation.

Attributes a class shares between threads are *declared* at their
``__init__`` assignment with a trailing ``# guarded-by: <lock>`` comment::

    self.flushes_scheduled = 0  # guarded-by: _flush_lock

The rule then requires every mutation of a declared attribute outside
``__init__`` — plain/augmented/subscript stores, deletes, and calls to
known mutating methods (``.append``, ``.add``, ``.next``, ...) — to sit
lexically inside a ``with self.<lock>:`` block for the declared lock.
Plain reads are not flagged: several of this codebase's reads are
intentionally lock-free (GIL-atomic membership probes on hot paths), and
flagging them would bury the writes that actually corrupt state.

The declared lock itself must exist: a ``self.<lock> = threading.Lock()``
(or ``RLock``) assignment in the class's own ``__init__`` or in the
``__init__`` of an in-tree ancestor (subclassed transports guard their
state with the base transport's lock so cross-dict invariants stay
atomic under one lock).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    ModuleSet,
    SourceModule,
    is_self_attr,
    self_attr_name,
)

RULE_ID = "A001"

#: Method names that mutate their receiver. ``next`` covers the id
#: generators; ``put`` the queues. Unknown names are treated as reads.
MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "next",
        "pop",
        "popitem",
        "popleft",
        "put",
        "put_nowait",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

_GUARD_MARK = "# guarded-by:"


def _guard_registry(
    module: SourceModule, cls: ast.ClassDef
) -> tuple[dict[str, str], dict[str, int], set[str]]:
    """Scan ``__init__`` for declarations.

    Returns (attr -> lock name, attr -> declaration line, locks defined
    as threading.Lock/RLock in the same ``__init__``).
    """
    guarded: dict[str, str] = {}
    decl_line: dict[str, int] = {}
    locks: set[str] = set()
    init = next(
        (
            n
            for n in cls.body
            if isinstance(n, ast.FunctionDef) and n.name == "__init__"
        ),
        None,
    )
    if init is None:
        return guarded, decl_line, locks
    for node in ast.walk(init):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            attr = self_attr_name(target)
            if attr is None:
                continue
            value = node.value  # type: ignore[union-attr]
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in ("Lock", "RLock", "Condition")
            ):
                locks.add(attr)
            text = module.line_text(node.lineno)
            mark = text.find(_GUARD_MARK)
            if mark >= 0:
                lock = text[mark + len(_GUARD_MARK) :].strip().split()[0]
                guarded[attr] = lock
                decl_line[attr] = node.lineno
    return guarded, decl_line, locks


class _MutationVisitor(ast.NodeVisitor):
    """Walks one method tracking which declared locks are lexically held."""

    def __init__(self, module: SourceModule, guarded: dict[str, str]):
        self.module = module
        self.guarded = guarded
        self.held: list[str] = []
        self.findings: list[Finding] = []

    # -- guard context -------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired = [
            name
            for item in node.items
            if (name := self_attr_name(item.context_expr)) is not None
        ]
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self.held[len(self.held) - len(acquired) :]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested function may run long after the enclosing with-block
        # released its lock: analyze its body with no locks held.
        outer, self.held = self.held, []
        for stmt in node.body:
            self.visit(stmt)
        self.held = outer

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- mutation forms ------------------------------------------------------

    def _attr_of_store_target(self, target: ast.expr) -> str | None:
        if (name := self_attr_name(target)) is not None:
            return name
        if isinstance(target, ast.Subscript):
            return self_attr_name(target.value)
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if (name := self._attr_of_store_target(element)) is not None:
                    return name
        return None

    def _check(self, attr: str | None, node: ast.AST, what: str) -> None:
        if attr is None or attr not in self.guarded:
            return
        lock = self.guarded[attr]
        if lock not in self.held:
            self.findings.append(
                Finding(
                    path=str(self.module.path),
                    line=node.lineno,  # type: ignore[attr-defined]
                    col=getattr(node, "col_offset", 0),
                    rule=RULE_ID,
                    message=(
                        f"{what} of shared attribute `self.{attr}` outside "
                        f"`with self.{lock}:` (declared guarded-by {lock})"
                    ),
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check(self._attr_of_store_target(target), node, "write")
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check(self._attr_of_store_target(node.target), node, "write")
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check(self._attr_of_store_target(node.target), node, "write")
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check(self._attr_of_store_target(target), node, "delete")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATORS
            and is_self_attr(func.value)
        ):
            self._check(
                self_attr_name(func.value), node, f"mutating call `.{func.attr}()`"
            )
        self.generic_visit(node)


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def check(modules: ModuleSet) -> Iterator[Finding]:
    # Locks may live in an in-tree ancestor's __init__ (e.g. a subclassed
    # transport guarding its own dicts with the base transport's
    # _state_lock); index every class so the declaration check can walk
    # the ancestry across modules.
    class_index: dict[str, tuple[SourceModule, ast.ClassDef]] = {}
    for module in modules:
        for cls in [
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ]:
            class_index.setdefault(cls.name, (module, cls))

    def ancestor_locks(cls: ast.ClassDef, seen: set[str]) -> set[str]:
        locks: set[str] = set()
        for base in _base_names(cls):
            if base not in class_index or base in seen:
                continue
            seen.add(base)
            base_module, base_cls = class_index[base]
            locks |= _guard_registry(base_module, base_cls)[2]
            locks |= ancestor_locks(base_cls, seen)
        return locks

    for module in modules:
        for cls in [
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ]:
            guarded, decl_line, locks = _guard_registry(module, cls)
            if not guarded:
                continue
            locks |= ancestor_locks(cls, set())
            for attr, lock in guarded.items():
                if lock not in locks:
                    yield Finding(
                        path=str(module.path),
                        line=decl_line[attr],
                        col=0,
                        rule=RULE_ID,
                        message=(
                            f"`self.{attr}` declared guarded-by {lock}, but "
                            f"`self.{lock}` is not a threading Lock/RLock/"
                            f"Condition created in {cls.name}.__init__ or an "
                            f"in-tree ancestor's"
                        ),
                    )
            for method in cls.body:
                if (
                    not isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    or method.name == "__init__"
                ):
                    continue
                visitor = _MutationVisitor(module, guarded)
                for stmt in method.body:
                    visitor.visit(stmt)
                yield from visitor.findings
