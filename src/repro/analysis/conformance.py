"""A003 transport-conformance.

Drivers are only swappable because every transport honors the exact
:class:`repro.runtime.transport.Transport` surface (and adapters the
:class:`repro.runtime.system.SystemAdapter` one). Python will happily
let a subclass drift — rename a parameter, drop a default, forget a
required method — and the break only surfaces when that driver runs.
This rule checks structurally, against a spec of the protocols encoded
here:

* every class deriving (transitively, within the analyzed tree) from
  ``Transport`` / ``SystemAdapter`` / ``LiveService`` implements the
  protocol's required methods somewhere in its in-tree ancestry — the
  pipelined replication plane widened ``Transport`` with ``call_async``
  and ``credit``, both specced here so concurrent transports cannot
  drift from the shipper's calling convention;
* the ``PipelinedShipper`` driver surface (``kick``/``stop``/
  ``in_flight_batches``) keeps its zero-argument shape — cluster
  drivers and drain paths poke the shipper through exactly these;
* the ``SocketTransport`` surface — the Transport methods plus the
  ``listen_address``/``connection_count`` operator entry points that
  ``run_cluster.py`` and the gateway drivers reach through;
* every override of a protocol method keeps the protocol's signature:
  same positional parameter names in order, defaults preserved, required
  keyword-only parameters present (extras allowed only with defaults).

The spec is the contract's second copy on purpose: if the protocol
classes themselves change shape, the rule flags *them* too, forcing the
spec — and every implementation — to move in the same commit.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.core import Finding, ModuleSet

RULE_ID = "A003"


@dataclass(frozen=True, slots=True)
class MethodSpec:
    #: Positional parameter names after ``self``, in order.
    positional: tuple[str, ...]
    #: How many of the trailing positional parameters carry defaults.
    defaults: int = 0
    #: Keyword-only parameter names; all specced kwonly params default.
    kwonly: tuple[str, ...] = ()
    #: Whether the protocol base raises NotImplementedError (must be
    #: overridden by a concrete subclass).
    required: bool = False


PROTOCOLS: dict[str, dict[str, MethodSpec]] = {
    "Transport": {
        "register": MethodSpec(
            ("node_id", "name", "service"), kwonly=("workers",), required=True
        ),
        "call": MethodSpec(
            ("src", "dst", "service", "method", "request", "request_bytes"),
            defaults=1,
            required=True,
        ),
        "call_async": MethodSpec(
            ("src", "dst", "service", "method", "request", "request_bytes"),
            defaults=1,
            kwonly=("on_done",),
        ),
        "credit": MethodSpec(("dst", "service")),
        "start": MethodSpec(()),
        "shutdown": MethodSpec(()),
    },
    # Not a base protocol but a pinned driver surface: every cluster
    # driver pokes the shipper through exactly these entry points, so the
    # spec holds them still even though the class derives only Thread.
    "PipelinedShipper": {
        "kick": MethodSpec(()),
        "stop": MethodSpec(()),
        "in_flight_batches": MethodSpec(()),
    },
    # The socket transport's full surface, pinned by name. Because it is
    # specced here, the base-class walk is skipped for it — so this spec
    # repeats the Transport methods verbatim (they must stay in lockstep
    # with the "Transport" spec above) and adds the two operator entry
    # points `run_cluster.py` and the gateway drivers depend on.
    "SocketTransport": {
        "register": MethodSpec(
            ("node_id", "name", "service"), kwonly=("workers",)
        ),
        "call": MethodSpec(
            ("src", "dst", "service", "method", "request", "request_bytes"),
            defaults=1,
        ),
        "call_async": MethodSpec(
            ("src", "dst", "service", "method", "request", "request_bytes"),
            defaults=1,
            kwonly=("on_done",),
        ),
        "credit": MethodSpec(("dst", "service")),
        "start": MethodSpec(()),
        "shutdown": MethodSpec(()),
        "listen_address": MethodSpec(()),
        "connection_count": MethodSpec(()),
    },
    # The live cluster's produce surface, pinned by name: the gateway's
    # coalescer and every driver's client path call through exactly
    # these — `produce_async`/`submit_produce` are the completion-driven
    # contract (no caller thread blocks; `on_complete(response, error)`
    # fires exactly once; `on_append` is the pipelining order token), so
    # a driver that drifts from this shape silently breaks the async
    # front door. Subclasses inherit rather than override, but if one
    # does override it must keep the shape.
    "LiveKeraCluster": {
        "produce": MethodSpec(("chunks", "producer_id")),
        "produce_async": MethodSpec(("chunks", "producer_id", "on_complete")),
        "submit_produce": MethodSpec(
            ("broker_id", "chunks", "producer_id", "on_complete"),
            kwonly=("on_append",),
        ),
    },
    # The failover plane's entry points, pinned by name: the shipper's
    # repair path reaches recovery through `note_node_failure` (via
    # `LiveKeraCluster.report_backup_failure`), transports feed verdicts
    # through `report_dead`, and chaos harnesses/operator tooling block
    # on `wait_recovered` — none of them import these classes' modules
    # at the call site, so a signature drift would only surface as a
    # runtime TypeError mid-recovery.
    "FailureDetector": {
        "start": MethodSpec(()),
        "stop": MethodSpec(()),
        "is_down": MethodSpec(("node_id",)),
        "verdicts": MethodSpec(()),
        "report_dead": MethodSpec(("node_id", "reason", "source"), defaults=1),
    },
    "FailoverPlane": {
        "start": MethodSpec(()),
        "stop": MethodSpec(()),
        "note_node_failure": MethodSpec(("node_id", "error")),
        "wait_recovered": MethodSpec(("node_id", "timeout"), defaults=1),
    },
    "SystemAdapter": {
        "build_cores": MethodSpec(("completion",), required=True),
        "on_stream_created": MethodSpec(("meta",)),
    },
    "LiveService": {
        "handle": MethodSpec(("method", "request"), required=True),
    },
}


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)
    }


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _signature_problems(spec: MethodSpec, fn: ast.FunctionDef) -> list[str]:
    args = fn.args
    problems: list[str] = []
    names = [a.arg for a in args.posonlyargs + args.args]
    if not names or names[0] not in ("self", "cls"):
        problems.append("first parameter must be `self`")
        positional = tuple(names)
    else:
        positional = tuple(names[1:])
    if positional != spec.positional and args.vararg is None:
        problems.append(
            f"positional parameters {positional or '()'} != protocol "
            f"{spec.positional or '()'}"
        )
    elif args.vararg is None and spec.defaults > len(args.defaults):
        problems.append(
            f"protocol defaults the last {spec.defaults} positional "
            f"parameter(s); override defaults only {len(args.defaults)}"
        )
    if args.kwarg is None:
        kwonly = {
            a.arg: d
            for a, d in zip(args.kwonlyargs, args.kw_defaults, strict=True)
        }
        for name in spec.kwonly:
            if name not in kwonly:
                problems.append(f"missing keyword-only parameter `{name}`")
        for name, default in kwonly.items():
            if name not in spec.kwonly and default is None:
                problems.append(
                    f"extra keyword-only parameter `{name}` must have a default"
                )
    return problems


def check(modules: ModuleSet) -> Iterator[Finding]:
    # Index every class in the tree by simple name (collisions keep the
    # first definition; the protocol names are unique in this codebase).
    class_index: dict[str, tuple[ast.ClassDef, str]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name not in class_index:
                class_index[node.name] = (node, str(module.path))

    def protocol_of(cls: ast.ClassDef, seen: set[str]) -> str | None:
        """The protocol this class ultimately derives from, if any."""
        for base in _base_names(cls):
            if base in PROTOCOLS:
                return base
            if base in class_index and base not in seen:
                seen.add(base)
                found = protocol_of(class_index[base][0], seen)
                if found is not None:
                    return found
        return None

    def inherited_methods(cls: ast.ClassDef, seen: set[str]) -> set[str]:
        """Method names defined by in-tree ancestors below the protocol."""
        names: set[str] = set()
        for base in _base_names(cls):
            if base in PROTOCOLS or base not in class_index or base in seen:
                continue
            seen.add(base)
            ancestor = class_index[base][0]
            names |= set(_methods(ancestor))
            names |= inherited_methods(ancestor, seen)
        return names

    for module in modules:
        for cls in [
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ]:
            if cls.name in PROTOCOLS:
                # The protocol definition itself must match the spec.
                spec_methods = PROTOCOLS[cls.name]
                defined = _methods(cls)
                for name, spec in spec_methods.items():
                    fn = defined.get(name)
                    problems = (
                        [f"protocol method `{name}` missing"]
                        if fn is None
                        else _signature_problems(spec, fn)
                    )
                    for problem in problems:
                        yield Finding(
                            path=str(module.path),
                            line=(fn or cls).lineno,
                            col=(fn or cls).col_offset,
                            rule=RULE_ID,
                            message=(
                                f"protocol {cls.name}.{name} drifted from the "
                                f"conformance spec ({problem}); update "
                                f"repro.analysis.conformance.PROTOCOLS and "
                                f"every implementation together"
                            ),
                        )
                continue
            protocol = protocol_of(cls, set())
            if protocol is None:
                continue
            spec_methods = PROTOCOLS[protocol]
            defined = _methods(cls)
            inherited = inherited_methods(cls, set())
            for name, spec in spec_methods.items():
                fn = defined.get(name)
                if fn is None:
                    if spec.required and name not in inherited:
                        yield Finding(
                            path=str(module.path),
                            line=cls.lineno,
                            col=cls.col_offset,
                            rule=RULE_ID,
                            message=(
                                f"{cls.name} registered as a {protocol} but "
                                f"does not implement required method "
                                f"`{name}`"
                            ),
                        )
                    continue
                for problem in _signature_problems(spec, fn):
                    yield Finding(
                        path=str(module.path),
                        line=fn.lineno,
                        col=fn.col_offset,
                        rule=RULE_ID,
                        message=(
                            f"{cls.name}.{name} does not conform to "
                            f"{protocol}.{name}: {problem}"
                        ),
                    )
