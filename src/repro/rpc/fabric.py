"""The RPC fabric: routing, dispatch/worker costs, service handlers.

An RPC's life cycle (all on simulated time):

1. **send**: dispatch CPU on the caller's node, then wire transfer of the
   request (sender NIC serialization + latency + receiver NIC);
2. **dispatch**: dispatch CPU on the callee's node (this is the resource
   that saturates when too many small replication RPCs fly around — the
   effect the virtual log consolidates away);
3. **execute**: a worker core runs the service handler generator. The
   handler may yield further events (CPU timeouts, nested RPCs). Yielding
   :data:`RELEASE_WORKER` frees the worker for the rest of the handler —
   used by handlers that park on completion events (Kafka's produce
   purgatory, KerA's replication wait);
4. **reply**: dispatch CPU on callee, wire transfer of the response,
   dispatch CPU on caller.

Handlers return ``(response_object, response_payload_bytes)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Generator
from typing import Any

from repro.common.errors import RpcError, SimulationError
from repro.sim.costmodel import CostModel
from repro.sim.engine import Environment, Event, Process
from repro.sim.network import NetworkModel
from repro.rpc.node import SimNode


class _ReleaseWorker:
    """Sentinel yielded by handlers to free their worker core early."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "RELEASE_WORKER"


RELEASE_WORKER = _ReleaseWorker()

#: A service handler: ``handler(method, request) -> generator`` returning
#: ``(response, response_bytes)``.
Handler = Callable[[str, Any], Generator[Any, Any, tuple[Any, int]]]


class Service:
    """Base class for RPC services; subclasses implement :meth:`handle`."""

    def handle(
        self, method: str, request: Any
    ) -> Generator[Any, Any, tuple[Any, int]]:  # pragma: no cover - interface
        raise NotImplementedError
        yield  # make it a generator


@dataclass
class RpcStats:
    """Cluster-wide RPC accounting, by service and method."""

    calls: dict[tuple[str, str], int] = field(default_factory=dict)
    request_bytes: dict[tuple[str, str], int] = field(default_factory=dict)

    def record(self, service: str, method: str, nbytes: int) -> None:
        key = (service, method)
        self.calls[key] = self.calls.get(key, 0) + 1
        self.request_bytes[key] = self.request_bytes.get(key, 0) + nbytes

    def total_calls(self, service: str | None = None) -> int:
        return sum(
            count
            for (svc, _), count in self.calls.items()
            if service is None or svc == service
        )


class RpcFabric:
    """Owns the nodes, the network, and the service registry."""

    def __init__(self, env: Environment, num_nodes: int, cost: CostModel) -> None:
        self.env = env
        self.cost = cost
        self.net = NetworkModel(env, num_nodes, cost)
        self.nodes = [SimNode(env, i, cost) for i in range(num_nodes)]
        self._services: dict[tuple[int, str], Service] = {}
        self.stats = RpcStats()

    def register(self, node_id: int, name: str, service: Service) -> None:
        """Bind ``service`` to ``(node, name)``; one service per binding."""
        key = (node_id, name)
        if key in self._services:
            raise RpcError(f"service {name!r} already registered on node {node_id}")
        self._services[key] = service

    def lookup(self, node_id: int, name: str) -> Service:
        try:
            return self._services[(node_id, name)]
        except KeyError:
            raise RpcError(f"no service {name!r} on node {node_id}") from None

    def call(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int,
    ) -> Process:
        """Issue an RPC; returns a process whose value is the response.

        Use this when the RPC runs concurrently with the caller (e.g.
        fan-out with ``all_of``). A caller that immediately awaits the
        result should prefer :meth:`call_inline`.
        """
        return self.env.process(
            self._call(src, dst, service, method, request, request_bytes),
            name=f"rpc:{service}.{method}",
        )

    def call_inline(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int,
    ) -> Generator[Event, Any, Any]:
        """Synchronous RPC for ``yield from`` — no process wrapper, two
        scheduler events cheaper than :meth:`call`."""
        return self._call(src, dst, service, method, request, request_bytes)

    def _call(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int,
    ) -> Generator[Event, Any, Any]:
        target = self.lookup(dst, service)
        self.stats.record(service, method, request_bytes)
        cost = self.cost
        src_node = self.nodes[src]
        dst_node = self.nodes[dst]
        # 1. sender dispatch + request transfer
        yield from src_node.dispatch.use(cost.dispatch_cost)
        yield from self.net.transfer(src, dst, request_bytes)
        # 2. receiver dispatch
        yield from dst_node.dispatch.use(cost.dispatch_cost)
        # 3. worker executes the handler
        response, response_bytes = yield from self._execute(dst_node, target, method, request)
        # 4. reply path
        yield from dst_node.dispatch.use(cost.dispatch_cost)
        yield from self.net.transfer(dst, src, response_bytes)
        yield from src_node.dispatch.use(cost.dispatch_cost)
        return response

    def _execute(
        self, node: SimNode, service: Service, method: str, request: Any
    ) -> Generator[Event, Any, tuple[Any, int]]:
        yield node.workers.acquire()
        holding = True
        handler = service.handle(method, request)
        send_value: Any = None
        throw_exc: BaseException | None = None
        try:
            while True:
                try:
                    if throw_exc is not None:
                        exc, throw_exc = throw_exc, None
                        target = handler.throw(exc)
                    else:
                        target = handler.send(send_value)
                except StopIteration as stop:
                    result = stop.value
                    if (
                        not isinstance(result, tuple)
                        or len(result) != 2
                        or not isinstance(result[1], int)
                    ):
                        raise SimulationError(
                            f"handler for {method!r} must return (response, nbytes), got {result!r}"
                        )
                    return result
                if isinstance(target, _ReleaseWorker):
                    if holding:
                        node.workers.release()
                        holding = False
                    send_value = None
                    continue
                if not isinstance(target, Event):
                    raise SimulationError(
                        f"handler for {method!r} yielded a non-event: {target!r}"
                    )
                try:
                    send_value = yield target
                except BaseException as exc:  # propagate into the handler
                    throw_exc = exc
        finally:
            if holding:
                node.workers.release()
