"""RPC framework: RAMCloud-style dispatch/worker request processing.

KerA ``builds atop RAMCloud's RPC framework ... borrowing the
dispatch-worker threading mechanism for handling RPCs`` (paper, Sections
IV and V-E). This package models that structure over the simulated
network:

* each :class:`~repro.rpc.node.SimNode` owns a dispatch-core resource and
  a worker-core pool (plus its NIC and disk);
* an RPC costs dispatch CPU on the sender, wire transfer, dispatch CPU on
  the receiver, then a worker core executes the service handler;
* handlers are generators and may themselves issue nested RPCs (the
  broker's synchronous replication to backups) or explicitly release
  their worker while parked on a completion event (Kafka's produce
  purgatory) by yielding :data:`RELEASE_WORKER`.

The per-message dispatch cost is deliberately prominent: the paper's
virtual-log consolidation wins precisely because it reduces how many
replication messages cross this path.
"""

from repro.rpc.node import SimNode
from repro.rpc.fabric import RpcFabric, Service, RELEASE_WORKER, RpcStats

__all__ = ["SimNode", "RpcFabric", "Service", "RELEASE_WORKER", "RpcStats"]
