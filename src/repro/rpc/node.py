"""A simulated cluster node: cores, NIC, disk.

The paper configures ``a broker with 16 threads that correspond to the
number of cores of a node``; following RAMCloud's threading model one
core polls and dispatches requests while the rest execute them. Client
machines (producers/consumers ``run on different nodes``) are modeled as
nodes too, with the same structure.
"""

from __future__ import annotations

from repro.sim.costmodel import CostModel
from repro.sim.disk import DiskModel
from repro.sim.engine import Environment
from repro.sim.resources import Resource


class SimNode:
    """One machine: dispatch core, worker cores, NIC (held by the fabric's
    network model), and a disk for backup flushes."""

    __slots__ = ("env", "node_id", "cost", "dispatch", "workers", "disk", "name")

    def __init__(
        self,
        env: Environment,
        node_id: int,
        cost: CostModel,
        *,
        name: str = "",
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.cost = cost
        self.name = name or f"node{node_id}"
        self.dispatch = Resource(env, cost.dispatch_cores)
        self.workers = Resource(env, cost.worker_cores)
        self.disk = DiskModel(env, cost)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimNode({self.name}, workers={self.cost.worker_cores})"
