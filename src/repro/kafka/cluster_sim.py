"""The discrete-event Kafka cluster driver.

System-side behaviour on top of :class:`repro.simdriver.BaseSimCluster`:

* the produce handler appends each batch to its partition's leader log
  under a per-partition lock (one log per partition serializes appends —
  contrast with KerA's Q active groups), wakes any parked follower
  fetches, releases its worker, and parks until the high watermark
  passes its batches (acks=all purgatory);
* one **replica fetcher** per (follower, leader) broker pair runs a
  long-poll fetch loop: the fetch request reports the offsets the
  follower has (which *is* the replication acknowledgment — advancing
  the high watermark), the leader parks empty fetches up to
  ``replica.fetch.wait.max.ms``, and the follower pays a per-partition
  small-append cost for every batch it pulls;
* consumers read below the high watermark through the same client code
  KerA uses.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.common.errors import ConfigError
from repro.rpc.fabric import RELEASE_WORKER, Service
from repro.runtime.system import KafkaSystem
from repro.sim.costmodel import CostModel
from repro.sim.engine import Event
from repro.sim.resources import Resource
from repro.simdriver.base import BaseSimCluster, SimResult, SimWorkload
from repro.kafka.broker import KafkaBrokerCore, ReplicaFetchItem
from repro.kafka.config import KafkaConfig
from repro.kera.messages import FetchRequest, ProduceRequest

__all__ = ["SimKafkaCluster", "SimWorkload", "SimResult"]

#: Wire overhead per partition entry in a replica fetch message.
_FETCH_ITEM_BYTES = 32


class _KafkaService(Service):
    """Sim wrapper around :class:`KafkaBrokerCore`."""

    def __init__(self, driver: "SimKafkaCluster", node_id: int) -> None:
        self.driver = driver
        self.node_id = node_id
        self.core = driver.broker_cores[node_id]
        self.locks: dict[tuple[int, int], Resource] = {}

    def _lock(self, key: tuple[int, int]) -> Resource:
        lock = self.locks.get(key)
        if lock is None:
            lock = Resource(self.driver.env, 1)
            self.locks[key] = lock
        return lock

    def handle(self, method: str, request: Any) -> Generator[Any, Any, tuple[Any, int]]:
        if method == "produce":
            return (yield from self._produce(request))
        if method == "fetch":
            return (yield from self._fetch(request))
        if method == "replica_fetch":
            return (yield from self._replica_fetch(request))
        raise ConfigError(f"unknown kafka method {method!r}")

    def _produce(
        self, request: ProduceRequest
    ) -> Generator[Any, Any, tuple[Any, int]]:
        driver = self.driver
        cost = driver.cost
        env = driver.env
        yield env.timeout(cost.request_handle_cost)
        # One log per partition: appends to the same partition serialize.
        by_partition: dict[tuple[int, int], tuple[int, int]] = {}
        for chunk in request.chunks:
            key = (chunk.stream_id, chunk.streamlet_id)
            n, nbytes = by_partition.get(key, (0, 0))
            by_partition[key] = (n + 1, nbytes + chunk.payload_len)
        for key, (n, nbytes) in by_partition.items():
            work = n * cost.chunk_append_cost + nbytes * cost.byte_copy_cost
            yield from self._lock(key).use(work)
        outcome = self.core.handle_produce(request)
        driver._wake_followers(self.node_id)
        if outcome.pending:
            done = driver._completion_event(self.node_id, request.request_id)
            yield RELEASE_WORKER
            yield done
        response = outcome.response
        return response, response.payload_bytes()

    def _fetch(self, request: FetchRequest) -> Generator[Any, Any, tuple[Any, int]]:
        cost = self.driver.cost
        response = self.core.handle_fetch(request)
        work = cost.request_handle_cost + response.chunk_count * cost.consumer_chunk_cost
        yield self.driver.env.timeout(work)
        return response, response.payload_bytes()

    def _replica_fetch(self, request: Any) -> Generator[Any, Any, tuple[Any, int]]:
        driver = self.driver
        cost = driver.cost
        follower, items = request
        # Per-partition examination cost: paid even for empty partitions.
        yield driver.env.timeout(
            cost.request_handle_cost
            + len(items) * cost.kafka_fetch_partition_cost
        )
        response = self.core.handle_replica_fetch(follower, items)
        if not any(batches for _, batches, _ in response):
            # Long poll: park (without a worker) until data arrives or
            # replica.fetch.wait.max.ms expires, then re-collect.
            wake = driver._follower_wait_event(self.node_id, follower)
            yield RELEASE_WORKER
            yield driver.env.any_of(
                [wake, driver.env.timeout(driver.config.replica_fetch_wait_max)]
            )
            response = self.core.handle_replica_fetch(
                follower, [item for item, _, _ in response]
            )
        nbytes = sum(
            sum(b.size for b in batches) + _FETCH_ITEM_BYTES
            for _, batches, _ in response
        )
        return response, nbytes


class SimKafkaCluster(BaseSimCluster):
    """Builds and runs one simulated Kafka experiment."""

    def __init__(
        self,
        config: KafkaConfig | None = None,
        workload: SimWorkload | None = None,
        cost: CostModel | None = None,
    ) -> None:
        self.config = config or KafkaConfig()
        super().__init__(
            workload or SimWorkload(),
            cost or CostModel(),
            system=KafkaSystem(self.config),
            q_active_groups=1,  # Kafka: one append slot per partition
            chunk_size=self.config.chunk_size,
            linger=self.config.linger,
            client_cache_chunks=self.config.client_cache_chunks,
        )

    broker_service = "kafka"

    # -- system wiring ------------------------------------------------------------

    @property
    def broker_cores(self) -> dict[int, KafkaBrokerCore]:
        return self.system.broker_cores

    @property
    def _follow_map(self) -> dict[tuple[int, int], list[tuple[int, int]]]:
        """(follower, leader) -> partitions the follower replicates."""
        return self.system.follow_map

    def _register_services(self) -> None:
        #: (leader, follower) -> parked long-poll wake event.
        self._repl_wakeups: dict[tuple[int, int], Event | None] = {}
        for node in self.broker_nodes:
            self.transport.register(node, "kafka", _KafkaService(self, node))

    def _followers_of(self, leader: int) -> tuple[int, ...]:
        return self.system.followers_of(leader)

    # -- follower wake-up plumbing -----------------------------------------------------

    def _wake_followers(self, leader: int) -> None:
        for follower in self._followers_of(leader):
            event = self._repl_wakeups.get((leader, follower))
            if event is not None:
                self._repl_wakeups[(leader, follower)] = None
                event.succeed()

    def _follower_wait_event(self, leader: int, follower: int) -> Event:
        event = Event(self.env)
        self._repl_wakeups[(leader, follower)] = event
        return event

    # -- replica fetcher processes ---------------------------------------------------------

    def _replica_fetcher(
        self, follower: int, leader: int, partitions: list[tuple[int, int]]
    ) -> Generator[Event, Any, None]:
        """One fetch loop per (follower, leader) pair
        (``num.replica.fetchers = 1``)."""
        env = self.env
        cost = self.cost
        core = self.broker_cores[follower]
        workers = self.fabric.nodes[follower].workers
        offsets = {key: 0 for key in partitions}
        while True:
            items = [
                ReplicaFetchItem(topic=t, partition=p, next_offset=offsets[(t, p)])
                for t, p in partitions
            ]
            request_bytes = _FETCH_ITEM_BYTES * len(items)
            response = yield from self.fabric.call_inline(
                follower, leader, "kafka", "replica_fetch", (follower, items), request_bytes
            )
            work = 0.0
            for item, batches, next_offset in response:
                if batches:
                    core.apply_replica_batches(item.topic, item.partition, batches)
                    nbytes = sum(b.payload_len for b in batches)
                    # Per-partition small log appends on the follower.
                    work += (
                        len(batches) * cost.kafka_replica_batch_cost
                        + nbytes * cost.byte_copy_cost
                    )
                offsets[(item.topic, item.partition)] = next_offset
            if work:
                yield from workers.use(work)

    def _spawn_system_processes(self) -> None:
        for (follower, leader), partitions in sorted(self._follow_map.items()):
            for fetcher in range(self.config.num_replica_fetchers):
                chunk = partitions[fetcher :: self.config.num_replica_fetchers]
                if chunk:
                    self.env.process(
                        self._replica_fetcher(follower, leader, chunk),
                        name=f"fetcher:{follower}<-{leader}#{fetcher}",
                    )

    # -- result -------------------------------------------------------------------------------

    def _system_result_fields(self) -> dict[str, Any]:
        fetches = self.fabric.stats.calls.get(("kafka", "replica_fetch"), 0)
        batches = sum(
            core.replica_batches_fetched for core in self.broker_cores.values()
        )
        return {
            "avg_replication_batch_chunks": (batches / fetches) if fetches else 0.0,
            "replication_rpcs": fetches,
        }
