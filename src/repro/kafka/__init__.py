"""Apache Kafka baseline: per-partition replicated logs, pull replication.

The comparison system of the paper's evaluation (Section V-B):

* each stream (*topic*) is split into a fixed number of partitions, each
  backed by **one replicated log** (:mod:`repro.kafka.log`);
* one broker is the partition *leader* serving clients; the other
  replicas are *followers* that issue pull-based fetch requests to stay
  in sync (**passive replication**) — a single replica fetcher per
  (follower, leader) broker pair, as in Kafka's default
  ``num.replica.fetchers=1``;
* with ``acks=all`` a produce request is acknowledged only once the high
  watermark — the minimum of the in-sync replicas' fetched offsets —
  passes the appended batches; consumers can read only below the high
  watermark;
* the follower fetch loop must be *tuned* (``replica.fetch.wait.max.ms``,
  ``replica.fetch.max.bytes``) — the operational pain the paper contrasts
  with KerA's self-clocking push replication.

Clients are byte-for-byte the same simulation code as KerA's
(:mod:`repro.simdriver`), so every throughput difference comes from the
replication and partitioning engines.
"""

from repro.kafka.config import KafkaConfig
from repro.kafka.log import PartitionLog
from repro.kafka.broker import KafkaBrokerCore
from repro.kafka.cluster_sim import SimKafkaCluster

__all__ = ["KafkaConfig", "PartitionLog", "KafkaBrokerCore", "SimKafkaCluster"]
