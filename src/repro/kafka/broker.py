"""The Kafka broker core: leader logs, follower replicas, fetch serving.

Sans-IO, like :class:`repro.kera.broker.KeraBrokerCore`: no time, no
transport. The driver supplies timing and runs the follower fetch loops;
this core owns log state, high-watermark accounting, and produce-ack
completion callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable

from repro.common.errors import StorageError, UnknownStreamError
from repro.wire.chunk import Chunk
from repro.kafka.config import KafkaConfig
from repro.kafka.log import PartitionLog
from repro.kera.messages import (
    FetchEntry,
    FetchPosition,
    FetchRequest,
    FetchResponse,
    ProduceRequest,
    ProduceResponse,
    ChunkAssignment,
)

RequestDoneCallback = Callable[[int], None]


@dataclass
class KafkaProduceOutcome:
    """Result of a produce: the response plus ack state."""

    request_id: int
    response: ProduceResponse
    new_records: int = 0
    new_bytes: int = 0
    #: Partitions whose logs gained data (drives follower wake-ups).
    touched: list[tuple[int, int]] = field(default_factory=list)
    #: True when the ack must wait for the high watermark (acks=all).
    pending: bool = False


@dataclass
class ReplicaFetchItem:
    """One partition's slice of a follower fetch request/response."""

    topic: int
    partition: int
    #: Next offset the follower wants == count of batches it already has.
    next_offset: int


class KafkaBrokerCore:
    """One Kafka broker: leader for some partitions, follower for others."""

    def __init__(
        self,
        *,
        broker_id: int,
        config: KafkaConfig,
        on_request_complete: RequestDoneCallback | None = None,
    ) -> None:
        self.broker_id = broker_id
        self.config = config
        self.on_request_complete = on_request_complete
        #: Partitions this broker leads.
        self.leader_logs: dict[tuple[int, int], PartitionLog] = {}
        #: Follower copies: (topic, partition) -> list of fetched batches.
        self.replica_logs: dict[tuple[int, int], list[Chunk]] = {}
        # Ack bookkeeping: request -> partitions still below the HW.
        self._request_remaining: dict[int, int] = {}
        # Stats.
        self.records_ingested = 0
        self.chunks_ingested = 0
        self.bytes_ingested = 0
        self.replica_batches_fetched = 0

    # -- topology ---------------------------------------------------------------

    def add_leader_partition(
        self, topic: int, partition: int, followers: tuple[int, ...]
    ) -> PartitionLog:
        key = (topic, partition)
        if key in self.leader_logs:
            raise StorageError(f"already leading {key}")
        log = PartitionLog(
            topic=topic, partition=partition, leader=self.broker_id, followers=followers
        )
        self.leader_logs[key] = log
        return log

    def add_replica_partition(self, topic: int, partition: int) -> None:
        self.replica_logs.setdefault((topic, partition), [])

    def log(self, topic: int, partition: int) -> PartitionLog:
        try:
            return self.leader_logs[(topic, partition)]
        except KeyError:
            raise UnknownStreamError(topic) from None

    # -- produce path ------------------------------------------------------------------

    def handle_produce(self, request: ProduceRequest) -> KafkaProduceOutcome:
        outcome = KafkaProduceOutcome(
            request_id=request.request_id,
            response=ProduceResponse(request_id=request.request_id, assignments=[]),
        )
        ends: dict[tuple[int, int], int] = {}
        for chunk in request.chunks:
            log = self.log(chunk.stream_id, chunk.streamlet_id)
            offset = log.append(chunk)
            ends[(chunk.stream_id, chunk.streamlet_id)] = offset + 1
            outcome.new_records += chunk.record_count
            outcome.new_bytes += chunk.payload_len
            self.records_ingested += chunk.record_count
            self.chunks_ingested += 1
            self.bytes_ingested += chunk.payload_len
            outcome.response.assignments.append(
                ChunkAssignment(
                    stream_id=chunk.stream_id,
                    streamlet_id=chunk.streamlet_id,
                    group_id=0,
                    segment_id=0,
                    offset=offset,
                )
            )
        outcome.touched = list(ends)
        waiting = 0
        for (topic, partition), end in ends.items():
            log = self.leader_logs[(topic, partition)]
            if not log.register_ack(end, request.request_id):
                waiting += 1
        if waiting:
            outcome.pending = True
            self._request_remaining[request.request_id] = waiting
        return outcome

    def _release(self, request_ids: Iterable[int]) -> None:
        for request_id in request_ids:
            remaining = self._request_remaining.get(request_id, 0) - 1
            if remaining <= 0:
                self._request_remaining.pop(request_id, None)
                if self.on_request_complete is not None:
                    self.on_request_complete(request_id)
            else:
                self._request_remaining[request_id] = remaining

    # -- passive replication (leader side) ------------------------------------------------

    def handle_replica_fetch(
        self, follower: int, items: list[ReplicaFetchItem]
    ) -> list[tuple[ReplicaFetchItem, list[Chunk], int]]:
        """Serve one follower fetch. First the offsets the follower now
        reports are committed (advancing high watermarks and releasing
        produce acks — Kafka's fetch-is-the-ack protocol), then new data
        is gathered under the per-partition and per-response byte caps."""
        response: list[tuple[ReplicaFetchItem, list[Chunk], int]] = []
        total = 0
        for item in items:
            log = self.log(item.topic, item.partition)
            self._release(log.advance_follower(follower, item.next_offset))
            budget = min(
                self.config.replica_fetch_max_bytes,
                self.config.replica_fetch_response_max_bytes - total,
            )
            if budget <= 0:
                batches: list[Chunk] = []
                next_offset = item.next_offset
            else:
                batches, next_offset = log.fetch_from(
                    item.next_offset, max_bytes=budget
                )
            total += sum(b.size for b in batches)
            response.append((item, batches, next_offset))
        return response

    def has_replica_data(self, follower: int, items: list[ReplicaFetchItem]) -> bool:
        """Whether any followed partition has batches past the follower's
        offsets (long-poll wake-up test)."""
        for item in items:
            log = self.log(item.topic, item.partition)
            if log.log_end_offset > item.next_offset:
                return True
        return False

    # -- follower side ----------------------------------------------------------------------

    def apply_replica_batches(
        self, topic: int, partition: int, batches: list[Chunk]
    ) -> None:
        self.replica_logs.setdefault((topic, partition), []).extend(batches)
        self.replica_batches_fetched += len(batches)

    # -- consumer path ------------------------------------------------------------------------

    def handle_fetch(self, request: FetchRequest) -> FetchResponse:
        """Consumers read below the high watermark only. The cursor's
        ``chunk_pos`` field carries the batch offset (Kafka has no group
        hierarchy; ``group_pos`` stays 0)."""
        entries = []
        for pos in request.positions:
            log = self.log(pos.stream_id, pos.streamlet_id)
            batches, next_offset = log.consumer_fetch(
                pos.chunk_pos, request.max_chunks_per_entry
            )
            entries.append(
                FetchEntry(
                    position=pos,
                    chunks=batches,
                    next_position=FetchPosition(
                        stream_id=pos.stream_id,
                        streamlet_id=pos.streamlet_id,
                        entry=pos.entry,
                        group_pos=0,
                        chunk_pos=next_offset,
                    ),
                )
            )
        return FetchResponse(request_id=request.request_id, entries=entries)

    # -- introspection ----------------------------------------------------------------------------

    def pending_requests(self) -> int:
        return len(self._request_remaining)
