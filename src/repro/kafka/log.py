"""The partition log: Kafka's unit of replication.

``Each stream is partitioned into a fixed number of partitions, each
partition being backed by one replicated log`` (paper, Section II-A /
Figure 2). The leader's log tracks, per follower, the next offset that
follower will fetch; the **high watermark** is the minimum offset known
to be on every in-sync replica, and both producer acknowledgments
(acks=all) and consumer visibility are bounded by it.

Offsets here are *batch indexes* (one producer chunk = one record batch),
which matches how the simulation accounts work; record-level offsets are
derivable from the per-batch record counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReplicationError, StorageError
from repro.wire.chunk import Chunk


@dataclass
class PendingAck:
    """A produce request waiting for the high watermark."""

    end_offset: int
    request_id: int


class PartitionLog:
    """Leader-side replicated log of one (topic, partition)."""

    __slots__ = (
        "topic",
        "partition",
        "leader",
        "followers",
        "batches",
        "record_counts",
        "_cumulative_records",
        "follower_next",
        "high_watermark",
        "_pending",
    )

    def __init__(
        self, *, topic: int, partition: int, leader: int, followers: tuple[int, ...]
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.leader = leader
        self.followers = followers
        self.batches: list[Chunk] = []
        self.record_counts: list[int] = []
        self._cumulative_records = 0
        #: Next offset each follower will fetch == batches it already has.
        self.follower_next: dict[int, int] = {f: 0 for f in followers}
        self.high_watermark = 0
        self._pending: list[PendingAck] = []

    # -- leader write path ------------------------------------------------------

    @property
    def log_end_offset(self) -> int:
        return len(self.batches)

    @property
    def record_count(self) -> int:
        return self._cumulative_records

    def append(self, batch: Chunk) -> int:
        """Append a producer batch; returns its offset."""
        offset = len(self.batches)
        self.batches.append(batch)
        self.record_counts.append(batch.record_count)
        self._cumulative_records += batch.record_count
        if not self.followers:
            self.high_watermark = self.log_end_offset
        return offset

    def register_ack(self, end_offset: int, request_id: int) -> bool:
        """Register a pending acks=all completion; returns True if the
        high watermark already covers it (R = 1)."""
        if end_offset <= self.high_watermark:
            return True
        self._pending.append(PendingAck(end_offset=end_offset, request_id=request_id))
        return False

    # -- passive replication --------------------------------------------------------

    def advance_follower(self, follower: int, next_offset: int) -> list[int]:
        """A follower fetched up to ``next_offset``; recompute the high
        watermark and return request ids whose acks released."""
        if follower not in self.follower_next:
            raise ReplicationError(
                f"node {follower} does not follow ({self.topic}, {self.partition})"
            )
        if next_offset < self.follower_next[follower]:
            raise ReplicationError("follower offset moved backwards")
        if next_offset > self.log_end_offset:
            raise ReplicationError("follower claims data beyond the log end")
        self.follower_next[follower] = next_offset
        new_hw = min(self.log_end_offset, min(self.follower_next.values()))
        if new_hw < self.high_watermark:
            raise ReplicationError("high watermark may not regress")
        self.high_watermark = new_hw
        released = [p.request_id for p in self._pending if p.end_offset <= new_hw]
        if released:
            self._pending = [p for p in self._pending if p.end_offset > new_hw]
        return released

    def fetch_from(
        self, offset: int, *, max_bytes: int
    ) -> tuple[list[Chunk], int]:
        """Batches for a follower starting at ``offset`` (followers may
        read to the log end, unlike consumers), bounded by ``max_bytes``
        but always at least one batch when available."""
        if offset < 0 or offset > self.log_end_offset:
            raise StorageError(f"fetch offset {offset} outside log")
        out: list[Chunk] = []
        total = 0
        i = offset
        while i < self.log_end_offset:
            batch = self.batches[i]
            if out and total + batch.size > max_bytes:
                break
            out.append(batch)
            total += batch.size
            i += 1
        return out, i

    # -- consumer read path -------------------------------------------------------------

    def consumer_fetch(self, offset: int, max_batches: int) -> tuple[list[Chunk], int]:
        """Batches below the high watermark starting at ``offset``."""
        if offset < 0:
            raise StorageError("negative consumer offset")
        end = min(self.high_watermark, offset + max_batches)
        if offset >= end:
            return [], offset
        return self.batches[offset:end], end

    @property
    def pending_acks(self) -> int:
        return len(self._pending)
