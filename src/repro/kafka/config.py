"""Kafka baseline configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import KB, MB, MSEC, USEC


@dataclass(frozen=True)
class KafkaConfig:
    """The knobs of the Kafka comparison runs.

    Replica-fetch tuning mirrors Kafka's broker configuration; the paper
    stresses that ``one has to tune the Kafka replication followers to be
    efficiently in sync with their leaders``.
    """

    num_brokers: int = 4
    #: R: total copies including the leader's (paper: 1-3).
    replication_factor: int = 3
    #: Producer batch capacity (batch.size; the paper's "chunk").
    chunk_size: int = 16 * KB
    #: linger.ms equivalent.
    linger: float = 1 * MSEC
    client_cache_chunks: int = 1000
    #: replica.fetch.wait.max.ms — how long a leader parks an empty
    #: follower fetch before answering.
    replica_fetch_wait_max: float = 500 * USEC
    #: replica.fetch.max.bytes — per-partition cap in one fetch response.
    replica_fetch_max_bytes: int = 1 * MB
    #: Total response cap for one follower fetch.
    replica_fetch_response_max_bytes: int = 10 * MB
    #: num.replica.fetchers per (follower, leader) pair.
    num_replica_fetchers: int = 1

    def __post_init__(self) -> None:
        if self.num_brokers < 1:
            raise ConfigError("num_brokers must be >= 1")
        if not 1 <= self.replication_factor <= self.num_brokers:
            raise ConfigError(
                "replication_factor must be between 1 and num_brokers"
            )
        if self.chunk_size <= 0:
            raise ConfigError("chunk_size must be positive")
        if self.replica_fetch_wait_max < 0 or self.linger < 0:
            raise ConfigError("waits must be >= 0")
        if self.num_replica_fetchers < 1:
            raise ConfigError("need at least one replica fetcher")

    @property
    def num_followers(self) -> int:
        return self.replication_factor - 1
