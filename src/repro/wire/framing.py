"""Back-to-back chunk framing.

Replication batches ship several chunks in one RPC; backup segments store
chunks back to back and are scanned at recovery time. Chunk headers are
self-describing (they carry ``payload_len``), so the frame is simply the
concatenation of encoded chunks.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.wire.chunk import Chunk, encode_chunk, decode_chunk


def encode_chunks(chunks: Sequence[Chunk]) -> bytes:
    """Concatenate the encoded chunks."""
    return b"".join(encode_chunk(c) for c in chunks)


def iter_chunk_views(
    buf: bytes | bytearray | memoryview, *, verify: bool = True
) -> Iterator[Chunk]:
    """Decode chunks back to back until the buffer is exhausted."""
    view = memoryview(buf)
    offset = 0
    while offset < len(view):
        chunk, offset = decode_chunk(view, offset, verify=verify)
        yield chunk


def decode_chunks(
    buf: bytes | bytearray | memoryview, *, verify: bool = True
) -> list[Chunk]:
    """Decode every chunk in ``buf``."""
    return list(iter_chunk_views(buf, verify=verify))
