"""Chunk format and builder.

Producers group record entries into *chunks* of configurable fixed
capacity (e.g. 1 KB or 16 KB). Each chunk is tagged with the producer
identifier and a per-(producer, streamlet) sequence number — the broker
uses the pair for exactly-once de-duplication — and with ``[group,
segment]`` attributes assigned at broker append time, which recovery uses
to reconstruct each group consistently (paper, Section IV-B).

Header layout (little-endian, 40 bytes)::

    u16  magic          0xCE7A
    u8   fmt_version    1
    u8   flags          bit0: payload present
    u32  stream_id
    u32  streamlet_id
    u32  producer_id
    u32  chunk_seq      per (producer, streamlet) sequence number
    u32  group_id       broker-assigned (GROUP_UNASSIGNED from producers)
    u32  segment_id     broker-assigned (SEGMENT_UNASSIGNED from producers)
    u32  record_count
    u32  payload_len
    u32  payload_crc    CRC-32C over the record entries
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.checksum import crc32c, crc32c_append
from repro.common.errors import WireFormatError, ChecksumError
from repro.wire.record import Record, encode_record, decode_records

if TYPE_CHECKING:  # pragma: no cover
    from repro.wire.pool import BufferPool

CHUNK_MAGIC = 0xCE7A
CHUNK_FMT_VERSION = 1
#: Sentinel for the broker-assigned attributes before append.
GROUP_UNASSIGNED = 0xFFFFFFFF
SEGMENT_UNASSIGNED = 0xFFFFFFFF

_HEADER = struct.Struct("<HBBIIIIIIIII")
#: Size of the chunk header in bytes.
CHUNK_HEADER_SIZE = _HEADER.size
assert CHUNK_HEADER_SIZE == 40

#: Byte offset of the broker-assigned ``group_id``/``segment_id`` pair
#: within an encoded chunk header (two consecutive little-endian u32s).
#: ``Segment.append`` stamps placement by patching these 8 bytes in the
#: segment buffer instead of re-encoding the chunk.
CHUNK_PLACEMENT_OFFSET = 20

_PLACEMENT = struct.Struct("<II")

_FLAG_PAYLOAD = 0x01


def placement_bytes(group_id: int, segment_id: int) -> bytes:
    """The 8 header bytes stamped at :data:`CHUNK_PLACEMENT_OFFSET`."""
    return _PLACEMENT.pack(group_id, segment_id)


@dataclass
class Chunk:  # noqa: A004 -- mutable by design: the broker assigns group/segment in place-free clones on the per-chunk append hot path (see Chunk.assigned), and __post_init__ backfills payload_crc; never shared across threads before append.
    """A batch of records, the unit of ingestion and replication.

    ``payload`` holds the back-to-back encoded record entries, or ``None``
    for metadata-only chunks (simulation benches), in which case
    ``payload_len`` still records the byte length the records would
    occupy. All storage-engine accounting works off ``payload_len`` so the
    two fidelities follow one code path.
    """

    stream_id: int
    streamlet_id: int
    producer_id: int
    chunk_seq: int
    record_count: int
    payload_len: int
    payload: bytes | memoryview | None = field(default=None, repr=False)
    payload_crc: int = 0
    group_id: int = GROUP_UNASSIGNED
    segment_id: int = SEGMENT_UNASSIGNED
    #: Cached encoded frame (header + payload) for the ids above. Producers
    #: encode once at build time; every later hop reuses these bytes. Not
    #: part of identity (``compare=False``) and dropped by :meth:`assigned`
    #: when the placement changes.
    wire: bytes | None = field(default=None, repr=False, compare=False)
    #: Whether ``payload_crc`` is known to match the payload bytes *in this
    #: address space*: set when the CRC was computed over these very bytes
    #: (builder/``__post_init__``) or checked against them (``decode_chunk``
    #: with ``verify=True``, :meth:`verify_payload`). Validation is a
    #: boundary-crossing cost — a chunk handed across threads by reference
    #: keeps the bit, while any transport that copies bytes between address
    #: spaces re-decodes and re-earns it on the receiving side.
    verified: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.payload is not None:
            if len(self.payload) != self.payload_len:
                raise WireFormatError(
                    f"payload_len {self.payload_len} != len(payload) {len(self.payload)}"
                )
            if self.payload_crc == 0:
                self.payload_crc = crc32c(self.payload)
                self.verified = True

    @classmethod
    def meta(
        cls,
        *,
        stream_id: int,
        streamlet_id: int,
        producer_id: int,
        chunk_seq: int,
        record_count: int,
        payload_len: int,
    ) -> "Chunk":
        """Build a metadata-only chunk (no payload bytes)."""
        return cls(
            stream_id=stream_id,
            streamlet_id=streamlet_id,
            producer_id=producer_id,
            chunk_seq=chunk_seq,
            record_count=record_count,
            payload_len=payload_len,
        )

    @property
    def size(self) -> int:
        """Total wire size: header plus payload."""
        return CHUNK_HEADER_SIZE + self.payload_len

    @property
    def has_payload(self) -> bool:
        return self.payload is not None

    def records(self, *, verify: bool = True) -> list[Record]:
        """Decode the chunk's records (requires a payload)."""
        if self.payload is None:
            raise WireFormatError("metadata-only chunk has no records to decode")
        return decode_records(self.payload, verify=verify)

    def dedup_key(self) -> tuple[int, int, int]:
        """Identity used for exactly-once de-duplication at the broker."""
        return (self.streamlet_id, self.producer_id, self.chunk_seq)

    def assigned(self, group_id: int, segment_id: int) -> "Chunk":
        """Copy of this chunk with broker-assigned placement attributes.

        Hand-rolled rather than :func:`dataclasses.replace` — this sits on
        the per-chunk append path and ``replace`` re-runs validation that
        already held.
        """
        clone = object.__new__(Chunk)
        clone.stream_id = self.stream_id
        clone.streamlet_id = self.streamlet_id
        clone.producer_id = self.producer_id
        clone.chunk_seq = self.chunk_seq
        clone.record_count = self.record_count
        clone.payload_len = self.payload_len
        clone.payload = self.payload
        clone.payload_crc = self.payload_crc
        clone.group_id = group_id
        clone.segment_id = segment_id
        # The cached frame encodes this chunk's placement ids; it only
        # survives a clone that keeps them.
        same_placement = group_id == self.group_id and segment_id == self.segment_id
        clone.wire = self.wire if same_placement else None
        clone.verified = self.verified
        return clone

    def encoded_frame(self) -> bytes:
        """The encoded wire frame (header + payload), cached on first use.

        This is the encode-once entry point: producers populate the cache
        at build time, ``Segment.append`` copies it into the segment
        buffer (stamping placement in place there), and replication ships
        views of those bytes. Chunks with payloads must not be mutated
        after the first call; :meth:`assigned` is the sanctioned way to
        change placement.
        """
        return encode_chunk(self)

    def verify_payload(self) -> None:
        """Check the payload CRC; raise :class:`ChecksumError` on corruption.

        Idempotent per address space: once the CRC has been computed or
        checked over these payload bytes (:attr:`verified`), later calls
        are free — re-hashing bytes that never left the process would
        only re-prove what construction already proved."""
        if self.payload is None or self.verified:
            return
        actual = crc32c(self.payload)
        if actual != self.payload_crc:
            raise ChecksumError(self.payload_crc, actual, "chunk payload")
        self.verified = True


def encode_chunk(chunk: Chunk) -> bytes:
    """Serialize header + payload. Metadata-only chunks encode the header
    followed by ``payload_len`` zero bytes so framing stays self-describing.

    Payload-carrying chunks cache the result on ``chunk.wire``, so
    repeated encodes of the same placement are free."""
    if chunk.wire is not None:
        return chunk.wire
    flags = _FLAG_PAYLOAD if chunk.payload is not None else 0
    header = _HEADER.pack(
        CHUNK_MAGIC,
        CHUNK_FMT_VERSION,
        flags,
        chunk.stream_id,
        chunk.streamlet_id,
        chunk.producer_id,
        chunk.chunk_seq,
        chunk.group_id,
        chunk.segment_id,
        chunk.record_count,
        chunk.payload_len,
        chunk.payload_crc,
    )
    if chunk.payload is not None:
        frame = b"".join((header, chunk.payload))
        chunk.wire = frame
        return frame
    return header + b"\x00" * chunk.payload_len


def decode_chunk(
    buf: bytes | bytearray | memoryview, offset: int = 0, *, verify: bool = True
) -> tuple[Chunk, int]:
    """Decode one chunk at ``offset``; return ``(chunk, next_offset)``."""
    view = memoryview(buf)
    if offset + CHUNK_HEADER_SIZE > len(view):
        raise WireFormatError(f"truncated chunk header at offset {offset}")
    (
        magic,
        fmt_version,
        flags,
        stream_id,
        streamlet_id,
        producer_id,
        chunk_seq,
        group_id,
        segment_id,
        record_count,
        payload_len,
        payload_crc,
    ) = _HEADER.unpack_from(view, offset)
    if magic != CHUNK_MAGIC:
        raise WireFormatError(f"bad chunk magic {magic:#06x} at offset {offset}")
    if fmt_version != CHUNK_FMT_VERSION:
        raise WireFormatError(f"unsupported chunk format version {fmt_version}")
    start = offset + CHUNK_HEADER_SIZE
    end = start + payload_len
    if end > len(view):
        raise WireFormatError(f"truncated chunk payload at offset {offset}")
    payload = bytes(view[start:end]) if flags & _FLAG_PAYLOAD else None
    if payload is not None and verify:
        actual = crc32c(payload)
        if actual != payload_crc:
            raise ChecksumError(payload_crc, actual, f"chunk at offset {offset}")
    chunk = Chunk(
        stream_id=stream_id,
        streamlet_id=streamlet_id,
        producer_id=producer_id,
        chunk_seq=chunk_seq,
        record_count=record_count,
        payload_len=payload_len,
        payload=payload,
        payload_crc=payload_crc,
        group_id=group_id,
        segment_id=segment_id,
        verified=payload is not None and verify,
    )
    return chunk, end


class ChunkBuilder:
    """Accumulates records into a chunk of bounded byte capacity.

    Producers keep one builder per streamlet; the source thread appends
    records until the chunk fills or the linger timeout fires, then the
    requests thread seals it with :meth:`build` (paper, Figure 6).

    Records are encoded straight into a scratch buffer with
    :data:`CHUNK_HEADER_SIZE` bytes of headroom, so :meth:`build` writes
    the header in front of the already-laid-out payload and emits the
    complete wire frame in one copy — the chunk leaves the producer with
    its :attr:`Chunk.wire` cache populated and is never re-encoded
    downstream. The scratch buffer may come from a shared
    :class:`~repro.wire.pool.BufferPool` (``pool=``); call :meth:`close`
    to hand it back when the builder retires.
    """

    __slots__ = (
        "capacity",
        "stream_id",
        "streamlet_id",
        "producer_id",
        "_scratch",
        "_pool",
        "_size",
        "_count",
        "_payload_crc",
        "_crc_known",
    )

    def __init__(
        self,
        capacity: int,
        *,
        stream_id: int,
        streamlet_id: int,
        producer_id: int,
        pool: "BufferPool | None" = None,
    ) -> None:
        if capacity <= 0:
            raise WireFormatError("chunk capacity must be positive")
        self.capacity = capacity
        self.stream_id = stream_id
        self.streamlet_id = streamlet_id
        self.producer_id = producer_id
        self._pool = pool
        if pool is not None:
            scratch = pool.rent()
            if len(scratch) < CHUNK_HEADER_SIZE + capacity:
                pool.release(scratch)
                raise WireFormatError(
                    f"pool buffers of {len(scratch)} bytes cannot hold a "
                    f"{capacity}-byte chunk plus header"
                )
            self._scratch: bytearray | None = scratch
        else:
            self._scratch = bytearray(CHUNK_HEADER_SIZE + capacity)
        self._size = 0
        self._count = 0
        # Running finalized CRC of the payload staged so far, maintained
        # as long as every append supplied its own CRC (appends that
        # don't flip _crc_known and build() falls back to re-reading).
        self._payload_crc = 0
        self._crc_known = True

    @property
    def record_count(self) -> int:
        return self._count

    @property
    def payload_size(self) -> int:
        return self._size

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    def remaining(self) -> int:
        return self.capacity - self._size

    def try_append(self, record: Record) -> bool:
        """Append if the encoded record fits; return whether it did.

        A record larger than an *empty* chunk's capacity is a hard error —
        it could never be shipped.
        """
        encoded = encode_record(record)
        if len(encoded) > self.capacity:
            raise WireFormatError(
                f"record of {len(encoded)} bytes exceeds chunk capacity {self.capacity}"
            )
        return self.try_append_encoded(encoded)

    def try_append_encoded(
        self, encoded: bytes, count: int = 1, *, payload_crc: int | None = None
    ) -> bool:
        """Append pre-encoded record bytes (vectorized workload path).

        ``payload_crc``, when the caller already knows the CRC-32C of
        ``encoded`` (the batch encoder computes record CRCs anyway),
        folds into a running payload checksum so :meth:`build` can seal
        without re-reading the scratch bytes; any append without it
        falls the chunk back to the re-reading seal.
        """
        if self._size + len(encoded) > self.capacity:
            return False
        if self._scratch is None:
            raise WireFormatError("append on closed chunk builder")
        start = CHUNK_HEADER_SIZE + self._size
        self._scratch[start : start + len(encoded)] = encoded
        if payload_crc is None:
            self._crc_known = False
        elif self._crc_known:
            self._payload_crc = (
                payload_crc
                if self._size == 0
                else crc32c_append(self._payload_crc, payload_crc, len(encoded))
            )
        self._size += len(encoded)
        self._count += count
        return True

    def build(self, chunk_seq: int) -> Chunk:
        """Seal the accumulated records into a chunk and reset the builder.

        The returned chunk carries its encoded frame (:attr:`Chunk.wire`)
        and a zero-copy ``payload`` view into it.
        """
        if self._scratch is None:
            raise WireFormatError("build on closed chunk builder")
        end = CHUNK_HEADER_SIZE + self._size
        if self._crc_known:
            # Every append carried its CRC: the payload checksum composed
            # incrementally and sealing touches no payload bytes.
            payload_crc = self._payload_crc
        else:
            payload_crc = crc32c(memoryview(self._scratch)[CHUNK_HEADER_SIZE:end])
        _HEADER.pack_into(
            self._scratch,
            0,
            CHUNK_MAGIC,
            CHUNK_FMT_VERSION,
            _FLAG_PAYLOAD,
            self.stream_id,
            self.streamlet_id,
            self.producer_id,
            chunk_seq,
            GROUP_UNASSIGNED,
            SEGMENT_UNASSIGNED,
            self._count,
            self._size,
            payload_crc,
        )
        frame = bytes(memoryview(self._scratch)[:end])
        chunk = Chunk(
            stream_id=self.stream_id,
            streamlet_id=self.streamlet_id,
            producer_id=self.producer_id,
            chunk_seq=chunk_seq,
            record_count=self._count,
            payload_len=self._size,
            payload=memoryview(frame)[CHUNK_HEADER_SIZE:],
            payload_crc=payload_crc,
            wire=frame,
            verified=True,
        )
        self._size = 0
        self._count = 0
        self._payload_crc = 0
        self._crc_known = True
        return chunk

    def close(self) -> None:
        """Release the scratch buffer (back to the pool when pooled)."""
        if self._scratch is None:
            return
        if self._pool is not None:
            self._pool.release(self._scratch)
        self._scratch = None
