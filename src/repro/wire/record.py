"""Record entry format.

A record is ``several keys (possibly none) and its value`` plus an entry
header whose checksum ``covers everything but this field`` (paper,
Section IV-A). The header optionally carries a version and a timestamp so
key-value interfaces can be layered on top efficiently.

Layout (little-endian)::

    u32  checksum      CRC-32C over every byte after this field
    u8   flags         bit0: version present, bit1: timestamp present
    u8   key_count
    u32  value_len
    [u64 version]      if flags bit0
    [u64 timestamp]    if flags bit1
    u16  key_len[key_count]
    ...  key bytes, back to back
    ...  value bytes

A 100-byte benchmark record (the paper's workload) is a keyless,
version-less record with a 90-byte value: 10 bytes of fixed header + 90.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from collections.abc import Iterator

import numpy as np

from repro.common.checksum import (
    crc32c,
    crc32c_lanes,
    crc32c_lanes16,
    crc32c_shift_many,
    crc32c_u32le_lanes,
)

#: Little-endian uint16 view dtype for the word-table CRC engine.
_U16LE = np.dtype("<u2")
from repro.common.errors import WireFormatError, ChecksumError

#: Size of the always-present header fields (checksum, flags, key_count,
#: value_len).
RECORD_FIXED_HEADER = 10

_FLAG_VERSION = 0x01
_FLAG_TIMESTAMP = 0x02

_FIXED = struct.Struct("<IBBI")
_U64 = struct.Struct("<Q")
_U16 = struct.Struct("<H")


@dataclass(frozen=True, slots=True)
class Record:
    """An immutable stream record.

    ``keys`` is a tuple of byte strings (empty for the non-keyed records
    used throughout the paper's evaluation); ``value`` is the payload.
    ``version`` and ``timestamp`` are optional header attributes.
    """

    value: bytes
    keys: tuple[bytes, ...] = field(default=())
    version: int | None = None
    timestamp: int | None = None

    def encoded_size(self) -> int:
        """Exact size in bytes of :func:`encode_record` output."""
        size = RECORD_FIXED_HEADER + len(self.value)
        if self.version is not None:
            size += 8
        if self.timestamp is not None:
            size += 8
        size += 2 * len(self.keys) + sum(len(k) for k in self.keys)
        return size

    @property
    def key(self) -> bytes | None:
        """The first key, or ``None`` for non-keyed records."""
        return self.keys[0] if self.keys else None


def encode_record(record: Record) -> bytes:
    """Serialize ``record``; the header checksum is computed here."""
    if len(record.keys) > 255:
        raise WireFormatError("at most 255 keys per record")
    flags = 0
    tail = bytearray()
    if record.version is not None:
        flags |= _FLAG_VERSION
        tail += _U64.pack(record.version)
    if record.timestamp is not None:
        flags |= _FLAG_TIMESTAMP
        tail += _U64.pack(record.timestamp)
    for k in record.keys:
        if len(k) > 0xFFFF:
            raise WireFormatError("key longer than 65535 bytes")
        tail += _U16.pack(len(k))
    for k in record.keys:
        tail += k
    tail += record.value
    # The checksum covers everything after the checksum field itself:
    # flags, key_count, value_len, and the tail.
    covered = (
        struct.pack("<BBI", flags, len(record.keys), len(record.value)) + bytes(tail)
    )
    return _FIXED.pack(crc32c(covered), flags, len(record.keys), len(record.value)) + bytes(
        tail
    )


def decode_record(
    buf: bytes | bytearray | memoryview, offset: int = 0, *, verify: bool = True
) -> tuple[Record, int]:
    """Decode one record at ``offset``; return ``(record, next_offset)``.

    With ``verify=True`` (the default) the header checksum is recomputed
    and a :class:`ChecksumError` raised on mismatch.
    """
    view = memoryview(buf)
    if offset + RECORD_FIXED_HEADER > len(view):
        raise WireFormatError(
            f"truncated record header at offset {offset} (buffer {len(view)} bytes)"
        )
    checksum, flags, key_count, value_len = _FIXED.unpack_from(view, offset)
    pos = offset + RECORD_FIXED_HEADER
    # Bounds-check the optional fields before unpacking: recovery scans
    # corrupt/truncated buffers and must get a structured error, not a
    # struct.error.
    optional = 8 * bool(flags & _FLAG_VERSION) + 8 * bool(flags & _FLAG_TIMESTAMP)
    if pos + optional + 2 * key_count > len(view):
        raise WireFormatError(
            f"truncated record header fields at offset {offset}"
        )
    version = timestamp = None
    if flags & _FLAG_VERSION:
        (version,) = _U64.unpack_from(view, pos)
        pos += 8
    if flags & _FLAG_TIMESTAMP:
        (timestamp,) = _U64.unpack_from(view, pos)
        pos += 8
    key_lens = []
    for _ in range(key_count):
        (klen,) = _U16.unpack_from(view, pos)
        key_lens.append(klen)
        pos += 2
    keys = []
    for klen in key_lens:
        keys.append(bytes(view[pos : pos + klen]))
        pos += klen
    end = pos + value_len
    if end > len(view):
        raise WireFormatError(f"truncated record body at offset {offset}")
    value = bytes(view[pos:end])
    if verify:
        covered = bytes(view[offset + 4 : end])
        actual = crc32c(covered)
        if actual != checksum:
            raise ChecksumError(checksum, actual, f"record at offset {offset}")
    return (
        Record(value=value, keys=tuple(keys), version=version, timestamp=timestamp),
        end,
    )


def iter_records(
    buf: bytes | bytearray | memoryview, *, verify: bool = True
) -> Iterator[Record]:
    """Iterate back-to-back record entries until the buffer is exhausted."""
    view = memoryview(buf)
    offset = 0
    while offset < len(view):
        record, offset = decode_record(view, offset, verify=verify)
        yield record


def decode_records(
    buf: bytes | bytearray | memoryview, *, verify: bool = True
) -> list[Record]:
    """Decode every record in ``buf``; see :func:`iter_records`."""
    return list(iter_records(buf, verify=verify))


#: Batch size from which :func:`encode_records` tries the vectorized
#: uniform-record path; smaller batches loop. With the word-table lane
#: engine the numpy dispatch overhead amortizes from about nine
#: ~100-byte records (measured crossover).
_VECTOR_MIN_RECORDS = 8


def _encode_uniform_keyless(
    values_blob: bytes, n: int, value_len: int, *, with_crcs: bool = False
) -> bytes | tuple[bytes, np.ndarray]:
    """Vectorized encoder for equal-length keyless, attribute-less records.

    Every record shares the 6-byte post-checksum header (flags=0,
    key_count=0, value_len), so the CRC-covered region of record ``i`` is
    ``prefix + values[i]`` — one :func:`crc32c_lanes` call checksums the
    whole batch, and the output frames are assembled as one uint8 matrix.
    ``values_blob`` is the ``n`` values concatenated back to back.
    Byte-identical to the per-record encoder (golden-tested).

    With ``with_crcs`` the return is ``(blob, full_crcs)`` where
    ``full_crcs[i]`` is the CRC over record ``i``'s *entire* encoded
    bytes (checksum field included) — composed from the covered CRCs
    just computed, so chunk sealing can checksum a whole payload via
    :func:`~repro.common.checksum.crc32c_concat` without re-reading it.
    """
    prefix = np.frombuffer(
        struct.pack("<BBI", 0, 0, value_len), dtype=np.uint8
    )
    values = np.frombuffer(values_blob, dtype=np.uint8).reshape(n, value_len)
    covered = np.empty((n, 6 + value_len), dtype=np.uint8)
    covered[:, :6] = prefix
    covered[:, 6:] = values
    if value_len % 2 == 0:
        # Even covered length: the word-table engine halves the gather
        # count per slicing step (value_len is even for the benchmark's
        # uniform records, so this is the hot branch).
        crcs = crc32c_lanes16(covered.view(_U16LE).T.astype(np.intp))
    else:
        crcs = crc32c_lanes(np.ascontiguousarray(covered.T).astype(np.intp))
    out = np.empty((n, RECORD_FIXED_HEADER + value_len), dtype=np.uint8)
    out[:, 0] = (crcs & 0xFF).astype(np.uint8)
    out[:, 1] = ((crcs >> 8) & 0xFF).astype(np.uint8)
    out[:, 2] = ((crcs >> 16) & 0xFF).astype(np.uint8)
    out[:, 3] = (crcs >> 24).astype(np.uint8)
    out[:, 4:10] = prefix
    out[:, 10:] = values
    if not with_crcs:
        return out.tobytes()
    # Full-record CRC = CRC of the 4 stored-checksum bytes pushed over
    # the covered region, XOR the covered CRC (GF(2) linearity).
    full = crc32c_shift_many(crc32c_u32le_lanes(crcs), 6 + value_len) ^ crcs
    return out.tobytes(), full


def encode_records(records: list[Record] | tuple[Record, ...]) -> bytes:
    """Serialize records back to back (a chunk payload).

    Batches of uniform keyless records — the paper's benchmark workload —
    are encoded through the lane-parallel CRC engine in one pass; anything
    else falls back to the per-record encoder.
    """
    if len(records) >= _VECTOR_MIN_RECORDS:
        first_len = len(records[0].value)
        if all(
            not r.keys
            and r.version is None
            and r.timestamp is None
            and len(r.value) == first_len
            for r in records
        ):
            return _encode_uniform_keyless(
                b"".join(r.value for r in records), len(records), first_len
            )
    return b"".join(encode_record(r) for r in records)


def encode_keyless_value(value: bytes) -> bytes:
    """Serialize one keyless, attribute-less record value."""
    covered = struct.pack("<BBI", 0, 0, len(value)) + value
    return _FIXED.pack(crc32c(covered), 0, 0, len(value)) + value


def encode_keyless_values(values: "list[bytes] | tuple[bytes, ...]") -> bytes:
    """Serialize keyless record values back to back (a chunk payload).

    The no-:class:`Record` twin of :func:`encode_records` for the
    paper's benchmark workload: producers stage raw value bytes and
    batch-encode at chunk-seal time, skipping one dataclass per record.
    Uniform-length batches take the lane-parallel CRC path.
    """
    if len(values) >= _VECTOR_MIN_RECORDS:
        value_len = len(values[0])
        if all(len(v) == value_len for v in values):
            return _encode_uniform_keyless(
                b"".join(values), len(values), value_len
            )
    return b"".join(encode_keyless_value(v) for v in values)


def encode_keyless_values_with_crcs(
    values: "list[bytes] | tuple[bytes, ...]",
) -> tuple[bytes, "np.ndarray | None"]:
    """:func:`encode_keyless_values` plus per-record full-frame CRCs.

    Returns ``(payload, crcs)`` where ``crcs[i]`` checksums record
    ``i``'s entire encoded bytes — the inputs chunk sealing needs to
    compose a payload CRC via
    :func:`~repro.common.checksum.crc32c_concat`. ``crcs`` is ``None``
    when the batch fell back to the per-record encoder (short or
    non-uniform batches), in which case the caller re-reads bytes as
    usual.
    """
    if len(values) >= _VECTOR_MIN_RECORDS:
        value_len = len(values[0])
        if all(len(v) == value_len for v in values):
            return _encode_uniform_keyless(
                b"".join(values), len(values), value_len, with_crcs=True
            )
    return b"".join(encode_keyless_value(v) for v in values), None


def make_uniform_payload(count: int, record_size: int, *, fill: int = 0x5A) -> bytes:
    """Build ``count`` identical keyless records of ``record_size`` bytes, fast.

    This is the vectorized path for the benchmark workload (100-byte
    non-keyed records): one record is encoded, then tiled with numpy. All
    records share a value, hence a checksum, so the result is byte-exact
    with the per-record encoder (property-tested).
    """
    if record_size < RECORD_FIXED_HEADER:
        raise WireFormatError(
            f"record_size must be >= {RECORD_FIXED_HEADER} (fixed header)"
        )
    value = bytes([fill]) * (record_size - RECORD_FIXED_HEADER)
    one = np.frombuffer(encode_record(Record(value=value)), dtype=np.uint8)
    return np.tile(one, count).tobytes()
