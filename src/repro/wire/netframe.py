"""Length-prefixed frame protocol for stream sockets.

The socket transport (``repro.runtime.socket_transport``) and the asyncio
client gateway (``repro.gateway``) move the existing zero-copy wire
frames over TCP. A *frame* is one length-prefixed message::

    [u32 magic][u32 kind][u32 payload_len][payload_len bytes]

``kind`` is transport-defined (replicate fast path, packed ack, pickled
fallback, hello, ...). The payload is opaque here; replicate frames carry
the chunk wire bytes verbatim, so this layer never re-encodes anything.

Copy discipline, mirroring :mod:`repro.wire.ring`:

* the **write side** is vectored — :func:`send_frame` hands the header
  plus the caller's payload parts (typically ``memoryview`` slices of
  broker segment memory) to ``socket.sendmsg`` as one scatter-gather
  list, so frame bytes go from segment buffers straight into the kernel
  without an intermediate coalescing copy. Short writes (a full socket
  buffer mid-vector) are resumed from the exact byte where the kernel
  stopped;
* the **read side** owns one preallocated, growable receive buffer per
  connection: :meth:`FrameReceiver.recv_frame` reads with ``recv_into``
  (no per-recv ``bytes`` allocation) and returns a zero-copy view into
  that buffer, valid until the next call — the same borrow contract as
  the ring's ``read``/``consume`` pair, collapsed into one call because
  a TCP stream needs no explicit consume.

Failure taxonomy (all typed, none wedge the connection state):

* clean EOF *between* frames — ``recv_frame`` returns ``None``;
* EOF *inside* a frame (peer died mid-send) — :class:`FrameProtocolError`;
* garbage where a header should be (bad magic) or an absurd length —
  :class:`FrameProtocolError`; the receiver cannot resynchronize a byte
  stream, so callers must drop the connection.
"""

from __future__ import annotations

import socket
import struct
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.common.errors import WireFormatError

if TYPE_CHECKING:  # asyncio is imported lazily by the async helpers
    import asyncio

#: ``b"KFRM"`` little-endian: the first four bytes of every frame.
FRAME_MAGIC = 0x4D52464B
_FRAME_HEAD = struct.Struct("<III")  # magic, kind, payload_len
FRAME_HEADER_SIZE = _FRAME_HEAD.size
#: Default per-frame payload ceiling; a length above the configured
#: maximum is treated as garbage, not as a huge allocation request.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024
#: Conservative scatter-gather vector cap (Linux IOV_MAX is 1024).
_SENDMSG_MAX_PARTS = 512

#: One ``bytes``-like payload part.
BufferPart = bytes | bytearray | memoryview


class FrameProtocolError(WireFormatError):
    """The byte stream is not a valid frame sequence (garbage header,
    oversized length, or a connection dropped mid-frame)."""


def pack_frame_header(kind: int, payload_len: int) -> bytes:
    return _FRAME_HEAD.pack(FRAME_MAGIC, kind, payload_len)


def parse_frame_header(
    buf: bytes | bytearray | memoryview, *, max_frame_bytes: int
) -> tuple[int, int]:
    """Validate a 12-byte header; returns ``(kind, payload_len)``."""
    magic, kind, length = _FRAME_HEAD.unpack_from(buf, 0)
    if magic != FRAME_MAGIC:
        raise FrameProtocolError(
            f"bad frame magic {magic:#010x} (expected {FRAME_MAGIC:#010x}): "
            f"stream is garbage or desynchronized"
        )
    if length > max_frame_bytes:
        raise FrameProtocolError(
            f"frame length {length} exceeds the {max_frame_bytes}-byte cap"
        )
    return kind, length


def send_frame(sock: socket.socket, kind: int, parts: Sequence[BufferPart]) -> int:
    """Write one frame with scatter-gather ``sendmsg``; returns total bytes.

    The header and every payload part go to the kernel as one iovec (no
    coalescing copy). A short write — the kernel accepted only a prefix —
    resumes from the exact boundary: whole parts already sent are dropped
    from the vector and the split part continues as a sliced view.
    """
    payload_len = sum(len(p) for p in parts)
    buffers: list[BufferPart] = [pack_frame_header(kind, payload_len), *parts]
    total = FRAME_HEADER_SIZE + payload_len
    index = 0
    offset = 0
    while index < len(buffers):
        head = buffers[index]
        vec: list[BufferPart] = [memoryview(head)[offset:] if offset else head]
        vec.extend(buffers[index + 1 : index + _SENDMSG_MAX_PARTS])
        sent = sock.sendmsg(vec)
        if sent == 0:  # pragma: no cover - sendmsg never returns 0 on success
            raise FrameProtocolError("socket send returned 0 mid-frame")
        while sent > 0 and index < len(buffers):
            remaining = len(buffers[index]) - offset
            if sent >= remaining:
                sent -= remaining
                index += 1
                offset = 0
            else:
                offset += sent
                sent = 0
    return total


class FrameReceiver:
    """Incremental frame reader over one (blocking) stream socket.

    Owns a single growable receive buffer; the ``(kind, view)`` returned
    by :meth:`recv_frame` aliases it and is valid only until the next
    call (callers that keep payload bytes must copy — the address-space
    boundary discipline applies regardless: CRCs are re-validated by the
    receiver before the bytes are trusted).
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._sock = sock
        self._max = max_frame_bytes
        self._buf = bytearray(min(64 * 1024, max(max_frame_bytes, FRAME_HEADER_SIZE)))

    def _recv_exact(self, length: int, *, eof_ok: bool) -> bool:
        """Fill ``self._buf[:length]`` from the socket.

        Returns False on a clean EOF before the first byte (only when
        ``eof_ok``); raises :class:`FrameProtocolError` on EOF mid-way.
        """
        view = memoryview(self._buf)
        got = 0
        while got < length:
            n = self._sock.recv_into(view[got:length])
            if n == 0:
                if eof_ok and got == 0:
                    return False
                raise FrameProtocolError(
                    f"connection closed mid-frame ({got} of {length} bytes read)"
                )
            got += n
        return True

    def recv_frame(self) -> tuple[int, memoryview] | None:
        """Read one frame; ``None`` on clean EOF at a frame boundary.

        The returned payload view aliases the receiver's buffer and is
        invalidated by the next ``recv_frame`` call.
        """
        if not self._recv_exact(FRAME_HEADER_SIZE, eof_ok=True):
            return None
        kind, length = parse_frame_header(self._buf, max_frame_bytes=self._max)
        if length > len(self._buf):
            # Grow once to the next power of two that fits; the buffer is
            # per-connection and reused for every subsequent frame.
            size = len(self._buf)
            while size < length:
                size *= 2
            self._buf = bytearray(min(size, self._max))
        self._recv_exact(length, eof_ok=False)
        return kind, memoryview(self._buf)[:length]  # borrows: _buf -- valid until the next recv_frame overwrites the receive buffer


async def read_frame_async(
    reader: "asyncio.StreamReader",
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> tuple[int, bytes] | None:
    """Asyncio twin of :meth:`FrameReceiver.recv_frame` for the gateway.

    Returns ``(kind, payload)`` or ``None`` on clean EOF between frames;
    raises :class:`FrameProtocolError` on garbage or mid-frame EOF.
    """
    import asyncio

    try:
        head = await reader.readexactly(FRAME_HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameProtocolError(
            f"connection closed mid-header ({len(exc.partial)} of "
            f"{FRAME_HEADER_SIZE} bytes read)"
        ) from None
    kind, length = parse_frame_header(head, max_frame_bytes=max_frame_bytes)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of {length} "
            f"bytes read)"
        ) from None
    return kind, payload


def write_frame_async(
    writer: "asyncio.StreamWriter", kind: int, parts: Sequence[BufferPart]
) -> int:
    """Queue one frame on an asyncio stream writer; returns total bytes.

    Writes land in the transport's output buffer (write coalescing: many
    small frames per syscall); the caller decides when to ``drain()``.
    """
    payload_len = sum(len(p) for p in parts)
    writer.write(pack_frame_header(kind, payload_len))
    for part in parts:
        writer.write(part)
    return FRAME_HEADER_SIZE + payload_len
