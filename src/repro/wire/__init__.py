"""Binary wire format: records, chunks, framing, append-only buffers.

This package implements the paper's data model (Section IV-A, Figure 3):

* **records** — multi-key-value entries with a checksummed entry header,
  after RAMCloud's SLIK format;
* **chunks** — fixed-capacity batches of records built by producers, tagged
  with the producer identifier and a per-(producer, streamlet) sequence
  number for exactly-once semantics, plus broker-assigned ``[group,
  segment]`` attributes used at recovery time;
* **framing** — back-to-back chunk encoding used for replication batches
  and backup segment scans;
* **buffers** — the append-only in-memory buffer with *head* and *durable
  head* offsets that underlies both physical and replicated segments.

Chunks can carry real payload bytes or only their byte length
(``payload=None``): the storage and replication engines treat both
identically, which lets the discrete-event benchmarks skip payload memcpy
while tests pin byte-level behaviour.
"""

from repro.wire.record import (
    Record,
    RECORD_FIXED_HEADER,
    encode_record,
    decode_record,
    decode_records,
    iter_records,
    encode_records,
    make_uniform_payload,
)
from repro.wire.chunk import (
    Chunk,
    ChunkBuilder,
    CHUNK_HEADER_SIZE,
    CHUNK_MAGIC,
    CHUNK_PLACEMENT_OFFSET,
    GROUP_UNASSIGNED,
    SEGMENT_UNASSIGNED,
    encode_chunk,
    decode_chunk,
    placement_bytes,
)
from repro.wire.framing import encode_chunks, decode_chunks, iter_chunk_views
from repro.wire.views import ChunkView, RecordView
from repro.wire.buffers import AppendBuffer
from repro.wire.ring import SpscRing, RingClosed

__all__ = [
    "Record",
    "RECORD_FIXED_HEADER",
    "encode_record",
    "decode_record",
    "decode_records",
    "iter_records",
    "encode_records",
    "make_uniform_payload",
    "Chunk",
    "ChunkBuilder",
    "CHUNK_HEADER_SIZE",
    "CHUNK_MAGIC",
    "CHUNK_PLACEMENT_OFFSET",
    "GROUP_UNASSIGNED",
    "SEGMENT_UNASSIGNED",
    "encode_chunk",
    "decode_chunk",
    "placement_bytes",
    "encode_chunks",
    "decode_chunks",
    "iter_chunk_views",
    "ChunkView",
    "RecordView",
    "AppendBuffer",
    "SpscRing",
    "RingClosed",
]
