"""Single-producer/single-consumer byte ring for shared-memory transports.

The process transport (``repro.runtime.process``) moves replication
frames between a broker and its backup workers through two of these per
binding (request ring + response ring), each living in one
``multiprocessing.shared_memory`` block. The ring itself is agnostic to
where its bytes live: it wraps any writable buffer, so unit tests drive
it over a plain ``bytearray``.

Layout (all little-endian)::

    [0:8)   head  u64  monotonic bytes published by the writer
    [8:16)  tail  u64  monotonic bytes consumed by the reader
    [16:20) closed u32 writer or reader has closed the channel
    [20:64) reserved (pads the header to one cache line)
    [64:64+capacity) data region

    record := [u32 payload_len][u32 kind][payload, padded to 8 bytes]

Records never wrap: capacity is a multiple of 8 and record sizes are
8-aligned, so the space before the wrap point is always 0 or >= 8 bytes;
a record that would not fit contiguously is preceded by a ``KIND_PAD``
record covering the remainder, which the reader skips transparently.

Safety argument (why no locks): exactly one writer mutates ``head`` and
exactly one reader mutates ``tail``; both counters only grow. The writer
copies the payload into the data region *before* publishing ``head``
(single aligned 8-byte store), so the reader never observes a partially
written record; the reader hands out a zero-copy view into the ring and
only advances ``tail`` on :meth:`consume`, after which the writer may
reuse those bytes. CPython executes each counter store as one ``memcpy``
under the GIL-independent buffer protocol — an aligned 8-byte store,
atomic on every platform we target.

``free_bytes`` doubles as the transport's credit signal: a full ring is
backpressure, propagated to the shipper instead of blocking producers.
"""

from __future__ import annotations

import struct
import time
from collections.abc import Sequence

from repro.common.errors import RpcError

HEADER_SIZE = 64
_HEAD = struct.Struct("<Q")  # at offset 0
_TAIL = struct.Struct("<Q")  # at offset 8
_CLOSED = struct.Struct("<I")  # at offset 16
_RECORD = struct.Struct("<II")  # [payload_len][kind]
RECORD_HEADER = _RECORD.size  # 8

#: Reserved record kind: skipped filler before a wrap point.
KIND_PAD = 0


def _align8(n: int) -> int:
    return (n + 7) & ~7


class RingClosed(RpcError):
    """The peer closed the ring."""


class SpscRing:
    """One direction of a shared-memory channel. Each process touches only
    its own side: the writer calls ``try_write``/``write``/``close``, the
    reader calls ``try_read``/``consume``/``close``."""

    def __init__(self, buf: memoryview | bytearray, *, reset: bool = False) -> None:
        view = memoryview(buf)
        if view.readonly:
            raise RpcError("ring buffer must be writable")
        view = view.cast("B")
        if len(view) <= HEADER_SIZE:
            raise RpcError("ring buffer smaller than its header")
        self.capacity = (len(view) - HEADER_SIZE) & ~7
        if self.capacity < 2 * RECORD_HEADER:
            raise RpcError("ring capacity too small for any record")
        self._buf = view  # borrows: buf -- the ring aliases the caller's shared-memory block for its whole lifetime
        self._data = view[HEADER_SIZE : HEADER_SIZE + self.capacity]  # borrows: buf
        if reset:
            view[:HEADER_SIZE] = bytes(HEADER_SIZE)
        # Reader-side cache of the last peeked record's total size.
        self._peeked: int = 0

    # -- header accessors ----------------------------------------------------

    @property
    def _head(self) -> int:
        return _HEAD.unpack_from(self._buf, 0)[0]

    @property
    def _tail(self) -> int:
        return _TAIL.unpack_from(self._buf, 8)[0]

    @property
    def closed(self) -> bool:
        return _CLOSED.unpack_from(self._buf, 16)[0] != 0

    def close(self) -> None:
        _CLOSED.pack_into(self._buf, 16, 1)

    @property
    def free_bytes(self) -> int:
        """Writable bytes right now — the transport's credit signal."""
        return self.capacity - (self._head - self._tail)

    @property
    def pending_bytes(self) -> int:
        return self._head - self._tail

    # -- writer side ---------------------------------------------------------

    def try_write(self, kind: int, parts: Sequence[bytes | bytearray | memoryview]) -> bool:
        """Copy ``parts`` into the ring as one record; False when full.

        The single copy here is *the* address-space boundary crossing —
        everything downstream reads the ring bytes in place.
        """
        if kind == KIND_PAD:
            raise RpcError("record kind 0 is reserved for padding")
        if self.closed:
            raise RingClosed("ring is closed")
        payload_len = sum(len(p) for p in parts)
        needed = RECORD_HEADER + _align8(payload_len)
        if needed > self.capacity:
            raise RpcError(
                f"record of {payload_len} bytes exceeds ring capacity {self.capacity}"
            )
        head = self._head
        pos = head % self.capacity
        contiguous = self.capacity - pos
        total = needed if needed <= contiguous else contiguous + needed
        if total > self.capacity - (head - self._tail):
            return False
        if needed > contiguous:
            # Fill to the wrap point with a pad record the reader skips.
            _RECORD.pack_into(self._data, pos, contiguous - RECORD_HEADER, KIND_PAD)
            head += contiguous
            pos = 0
        _RECORD.pack_into(self._data, pos, payload_len, kind)
        offset = pos + RECORD_HEADER
        for part in parts:
            view = memoryview(part).cast("B")
            self._data[offset : offset + len(view)] = view
            offset += len(view)
        # Publish: payload bytes first, then the head store makes the
        # record visible to the reader.
        _HEAD.pack_into(self._buf, 0, head + needed)
        return True

    def write(
        self,
        kind: int,
        parts: Sequence[bytes | bytearray | memoryview],
        timeout: float | None = None,
    ) -> bool:
        """``try_write`` with bounded spin-waiting for reader progress."""
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = 1e-5
        while not self.try_write(kind, parts):
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(delay)
            delay = min(delay * 2, 1e-3)
        return True

    # -- reader side ---------------------------------------------------------

    def try_read(self) -> tuple[int, memoryview] | None:
        """Peek the next record as ``(kind, zero-copy payload view)``.

        The view aliases ring memory: it is valid until :meth:`consume`,
        which releases the bytes back to the writer. Returns ``None``
        when the ring is empty. Pad records are skipped internally.
        """
        while True:
            tail = self._tail
            if tail == self._head:
                return None
            pos = tail % self.capacity
            payload_len, kind = _RECORD.unpack_from(self._data, pos)
            total = RECORD_HEADER + _align8(payload_len)
            if kind == KIND_PAD:
                _TAIL.pack_into(self._buf, 8, tail + total)
                continue
            self._peeked = total
            start = pos + RECORD_HEADER
            return kind, self._data[start : start + payload_len]

    def consume(self) -> None:
        """Release the record returned by the last :meth:`try_read`."""
        if self._peeked == 0:
            raise RpcError("consume without a peeked record")
        _TAIL.pack_into(self._buf, 8, self._tail + self._peeked)
        self._peeked = 0

    def read(self, timeout: float | None = None) -> tuple[int, memoryview] | None:
        """``try_read`` with bounded spin-waiting; ``None`` on timeout or
        when the ring is closed *and* fully drained (close-then-drain is
        the shutdown contract: queued records are still delivered)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = 1e-5
        while True:
            record = self.try_read()
            if record is not None:
                return record
            if self.closed:
                return None
            if deadline is not None and time.monotonic() >= deadline:
                return None
            time.sleep(delay)
            delay = min(delay * 2, 1e-3)
