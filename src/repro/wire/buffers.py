"""Append-only buffer with head and durable-head offsets.

Both physical segments and backup replicated segments are ``append-only
in-memory buffers`` (paper, Section III). Each keeps two attributes: the
*head* (next free offset) and the *durable head* (offset up to which data
has been durably replicated / flushed); consumers may only read below the
durable head. The buffer enforces ``0 <= durable_head <= head <=
capacity`` at all times.
"""

from __future__ import annotations

from repro.common.errors import SegmentFullError, SegmentSealedError, StorageError


class AppendBuffer:
    """Fixed-capacity append-only byte buffer.

    When constructed with ``materialize=False`` the buffer performs all
    offset accounting but stores no bytes — the metadata-only fidelity
    used by the discrete-event benchmarks. Reads are then unavailable.
    """

    __slots__ = ("capacity", "_data", "_head", "_durable_head", "_sealed")

    def __init__(self, capacity: int, *, materialize: bool = True) -> None:
        if capacity <= 0:
            raise StorageError("buffer capacity must be positive")
        self.capacity = capacity
        self._data: bytearray | None = bytearray(capacity) if materialize else None
        self._head = 0
        self._durable_head = 0
        self._sealed = False

    @property
    def head(self) -> int:
        """Next free offset (bytes appended so far)."""
        return self._head

    @property
    def durable_head(self) -> int:
        """Offset up to which data is durable; never exceeds :attr:`head`."""
        return self._durable_head

    @property
    def sealed(self) -> bool:
        return self._sealed

    @property
    def materialized(self) -> bool:
        return self._data is not None

    def remaining(self) -> int:
        return self.capacity - self._head

    def fits(self, length: int) -> bool:
        return length <= self.remaining()

    def append(self, data: bytes | bytearray | memoryview) -> int:
        """Append bytes; return the offset they were written at."""
        if self._sealed:
            raise SegmentSealedError("append on sealed buffer")
        length = len(data)
        if not self.fits(length):
            raise SegmentFullError(
                f"append of {length} bytes exceeds remaining {self.remaining()}"
            )
        offset = self._head
        if self._data is not None:
            self._data[offset : offset + length] = data
        self._head += length
        return offset

    def reserve(self, length: int) -> int:
        """Account for an append without storing bytes (metadata fidelity)."""
        if self._sealed:
            raise SegmentSealedError("reserve on sealed buffer")
        if not self.fits(length):
            raise SegmentFullError(
                f"reserve of {length} bytes exceeds remaining {self.remaining()}"
            )
        offset = self._head
        self._head += length
        return offset

    def patch(self, offset: int, data: bytes | bytearray | memoryview) -> None:
        """Rewrite already-appended bytes in place (broker header stamps).

        Only the non-durable region ``[durable_head, head)`` may be
        patched: bytes below the durable head have been replicated and are
        immutable, bytes at or above the head do not exist yet.
        """
        if self._data is None:
            raise StorageError("buffer is metadata-only; no bytes to patch")
        if self._sealed:
            raise SegmentSealedError("patch on sealed buffer")
        end = offset + len(data)
        if offset < self._durable_head or end > self._head:
            raise StorageError(
                f"patch [{offset}, {end}) outside mutable range "
                f"[{self._durable_head}, {self._head})"
            )
        self._data[offset:end] = data

    def view(self, offset: int, length: int) -> memoryview:
        """Zero-copy view of previously appended bytes."""
        if self._data is None:
            raise StorageError("buffer is metadata-only; no bytes to view")
        if offset < 0 or offset + length > self._head:
            raise StorageError(
                f"view [{offset}, {offset + length}) outside appended range [0, {self._head})"
            )
        return memoryview(self._data)[offset : offset + length]

    def advance_durable(self, new_durable_head: int) -> None:
        """Move the durable head forward (monotone, bounded by head)."""
        if new_durable_head < self._durable_head:
            raise StorageError(
                f"durable head may not move backwards ({self._durable_head} -> {new_durable_head})"
            )
        if new_durable_head > self._head:
            raise StorageError(
                f"durable head {new_durable_head} may not pass head {self._head}"
            )
        self._durable_head = new_durable_head

    def seal(self) -> None:
        """Make the buffer immutable (a closed segment)."""
        self._sealed = True

    def __len__(self) -> int:
        return self._head

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AppendBuffer(head={self._head}, durable={self._durable_head}, "
            f"capacity={self.capacity}, sealed={self._sealed})"
        )
