"""Lazy zero-copy decode views over encoded frames.

The write path encodes once and ships views of the encoded bytes; these
classes are the read-path mirror: a :class:`ChunkView` wraps an encoded
chunk frame (header + records) *in place*, parsing header fields on
demand and never copying payload bytes until the caller materializes
them. A :class:`RecordView` does the same for one record entry inside the
payload — its value is exposed as a :class:`memoryview` slice of the
frame, so a consumer that filters on headers or hands values straight to
another buffer touches each byte exactly once.

Views are plain ``__slots__`` classes rather than dataclasses: they sit
on the per-record consume hot path, and they are *windows onto shared
bytes*, not messages — the frame they alias belongs to a segment buffer
or a cache entry and must not be mutated while views are live (append-only
segment bytes below the durable head never are).

Integrity discipline mirrors :class:`repro.wire.chunk.Chunk`: a view
carries a ``verified`` bit meaning "the payload CRC was checked against
these very bytes in this address space". The fan-out cache validates once
per cached chunk and every consumer group inherits the bit; per-record
header checksums are then redundant on the read path (the chunk CRC
covers every payload byte) and are only recomputed on demand via
:meth:`RecordView.verify`.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from repro.common.checksum import crc32c
from repro.common.errors import ChecksumError, WireFormatError
from repro.wire.chunk import (
    CHUNK_HEADER_SIZE,
    CHUNK_MAGIC,
    CHUNK_FMT_VERSION,
    Chunk,
    decode_chunk,
)
from repro.wire.record import RECORD_FIXED_HEADER, Record

_CHUNK_HEADER = struct.Struct("<HBBIIIIIIIII")
_RECORD_FIXED = struct.Struct("<IBBI")
_U64 = struct.Struct("<Q")
_U16 = struct.Struct("<H")

_FLAG_VERSION = 0x01
_FLAG_TIMESTAMP = 0x02


class RecordView:
    """A zero-copy window onto one encoded record entry.

    The fixed header (checksum, flags, key_count, value_len) is parsed at
    construction — iteration needs the entry's extent anyway — while the
    optional attributes, keys, and value bytes are materialized only on
    access.
    """

    __slots__ = (
        "_buf",
        "offset",
        "checksum",
        "flags",
        "key_count",
        "value_len",
        "end_offset",
        "_body_start",
    )

    def __init__(self, buf: memoryview, offset: int = 0) -> None:
        if offset + RECORD_FIXED_HEADER > len(buf):
            raise WireFormatError(
                f"truncated record header at offset {offset} "
                f"(buffer {len(buf)} bytes)"
            )
        self._buf = buf  # borrows: buf -- a RecordView is a window into its chunk's payload bytes
        self.offset = offset
        checksum, flags, key_count, value_len = _RECORD_FIXED.unpack_from(
            buf, offset
        )
        self.checksum = checksum
        self.flags = flags
        self.key_count = key_count
        self.value_len = value_len
        pos = offset + RECORD_FIXED_HEADER
        pos += 8 * bool(flags & _FLAG_VERSION) + 8 * bool(flags & _FLAG_TIMESTAMP)
        if key_count:
            key_end = pos + 2 * key_count
            if key_end > len(buf):
                raise WireFormatError(
                    f"truncated record header fields at offset {offset}"
                )
            for i in range(key_count):
                pos += 2 + _U16.unpack_from(buf, key_end - 2 * (key_count - i))[0]
            # ``pos`` now spans the key-length array plus every key body.
        self._body_start = pos
        self.end_offset = pos + value_len
        if self.end_offset > len(buf):
            raise WireFormatError(f"truncated record body at offset {offset}")

    @property
    def size(self) -> int:
        return self.end_offset - self.offset

    @property
    def version(self) -> int | None:
        if not self.flags & _FLAG_VERSION:
            return None
        return int(_U64.unpack_from(self._buf, self.offset + RECORD_FIXED_HEADER)[0])

    @property
    def timestamp(self) -> int | None:
        if not self.flags & _FLAG_TIMESTAMP:
            return None
        pos = self.offset + RECORD_FIXED_HEADER
        pos += 8 * bool(self.flags & _FLAG_VERSION)
        return int(_U64.unpack_from(self._buf, pos)[0])

    @property
    def keys(self) -> tuple[bytes, ...]:
        """The record's keys, copied out (empty for benchmark records)."""
        if not self.key_count:
            return ()
        pos = self.offset + RECORD_FIXED_HEADER
        pos += 8 * bool(self.flags & _FLAG_VERSION)
        pos += 8 * bool(self.flags & _FLAG_TIMESTAMP)
        lens = [
            _U16.unpack_from(self._buf, pos + 2 * i)[0]
            for i in range(self.key_count)
        ]
        pos += 2 * self.key_count
        keys = []
        for klen in lens:
            keys.append(bytes(self._buf[pos : pos + klen]))
            pos += klen
        return tuple(keys)

    @property
    def value_view(self) -> memoryview:
        """The value bytes, zero-copy (a slice of the backing frame)."""
        return self._buf[self._body_start : self.end_offset]

    @property
    def value(self) -> bytes:
        """The value bytes, materialized (copies)."""
        return bytes(self.value_view)

    def verify(self) -> None:
        """Recompute the entry-header checksum; raise on corruption."""
        covered = bytes(self._buf[self.offset + 4 : self.end_offset])
        actual = crc32c(covered)
        if actual != self.checksum:
            raise ChecksumError(
                self.checksum, actual, f"record at offset {self.offset}"
            )

    def to_record(self) -> Record:
        """Materialize an immutable :class:`Record` (copies all bytes)."""
        return Record(
            value=self.value,
            keys=self.keys,
            version=self.version,
            timestamp=self.timestamp,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RecordView(offset={self.offset}, value_len={self.value_len}, "
            f"keys={self.key_count})"
        )


class ChunkView:
    """A zero-copy window onto one encoded chunk frame.

    Wraps ``frame`` (header + payload bytes, e.g. a
    :meth:`repro.storage.segment.StoredChunk.encoded_view` slice of a
    segment buffer) without decoding it. Header fields are parsed on the
    first access of any of them and memoized as a tuple; the payload is
    only ever exposed as views until a caller explicitly materializes
    records.

    ``verified`` follows the write path's discipline: it is set when the
    payload CRC has been checked over these very bytes in this address
    space (:meth:`verify_payload`, or by the fan-out cache at admission).
    """

    __slots__ = ("frame", "verified", "_fields", "_records")

    def __init__(self, frame: memoryview | bytes, *, verified: bool = False) -> None:
        view = frame if isinstance(frame, memoryview) else memoryview(frame)
        if len(view) < CHUNK_HEADER_SIZE:
            raise WireFormatError(
                f"frame of {len(view)} bytes is shorter than a chunk header"
            )
        self.frame = view  # borrows: frame -- the view window is only valid while the caller's frame bytes (ring slot / segment buffer / cache entry) stay alive
        self.verified = verified
        self._fields: tuple[int, ...] | None = None
        self._records: list[Record] | None = None

    # -- lazy header ---------------------------------------------------------

    def _header(self) -> tuple[int, ...]:
        fields = self._fields
        if fields is None:
            fields = _CHUNK_HEADER.unpack_from(self.frame, 0)
            if fields[0] != CHUNK_MAGIC:
                raise WireFormatError(f"bad chunk magic {fields[0]:#06x} in frame")
            if fields[1] != CHUNK_FMT_VERSION:
                raise WireFormatError(
                    f"unsupported chunk format version {fields[1]}"
                )
            if CHUNK_HEADER_SIZE + fields[10] > len(self.frame):
                raise WireFormatError(
                    f"frame of {len(self.frame)} bytes shorter than header + "
                    f"payload_len {fields[10]}"
                )
            self._fields = fields
        return fields

    @property
    def stream_id(self) -> int:
        return self._header()[3]

    @property
    def streamlet_id(self) -> int:
        return self._header()[4]

    @property
    def producer_id(self) -> int:
        return self._header()[5]

    @property
    def chunk_seq(self) -> int:
        return self._header()[6]

    @property
    def group_id(self) -> int:
        return self._header()[7]

    @property
    def segment_id(self) -> int:
        return self._header()[8]

    @property
    def record_count(self) -> int:
        return self._header()[9]

    @property
    def payload_len(self) -> int:
        return self._header()[10]

    @property
    def payload_crc(self) -> int:
        return self._header()[11]

    @property
    def size(self) -> int:
        """Total wire size (header + payload) — same accounting surface as
        :class:`~repro.wire.chunk.Chunk`, so fetch responses can hold
        either."""
        return CHUNK_HEADER_SIZE + self.payload_len

    # -- payload access ------------------------------------------------------

    @property
    def payload_view(self) -> memoryview:
        """The encoded record entries, zero-copy."""
        return self.frame[CHUNK_HEADER_SIZE : CHUNK_HEADER_SIZE + self.payload_len]

    def verify_payload(self) -> None:
        """Check the payload CRC over the framed bytes; idempotent per
        address space, exactly like :meth:`Chunk.verify_payload`."""
        if self.verified:
            return
        actual = crc32c(self.payload_view)
        if actual != self.payload_crc:
            raise ChecksumError(self.payload_crc, actual, "chunk frame payload")
        self.verified = True

    def record_views(self) -> Iterator[RecordView]:
        """Iterate lazy record views over the payload, in order."""
        payload = self.payload_view
        offset = 0
        end = len(payload)
        while offset < end:
            view = RecordView(payload, offset)
            yield view
            offset = view.end_offset

    def records(self) -> list[Record]:
        """Materialized records, memoized on the view.

        Decodes *without* per-record checksum verification: the chunk CRC
        covers every payload byte and callers hold views whose
        ``verified`` bit the serving boundary already earned. Call
        :meth:`RecordView.verify` per record when scanning bytes of
        unknown provenance. The memo makes repeated consumption free;
        pre-warm it (or rely on the fan-out cache's admission doing so)
        before sharing one view across threads.
        """
        records = self._records
        if records is None:
            records = [v.to_record() for v in self.record_views()]
            self._records = records
        return records

    def to_chunk(self, *, verify: bool = False) -> Chunk:
        """Materialize a :class:`Chunk` (copies the payload)."""
        chunk, _ = decode_chunk(self.frame, verify=verify)
        if not verify:
            chunk.verified = self.verified
        return chunk

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkView(size={len(self.frame)}, verified={self.verified})"
        )
