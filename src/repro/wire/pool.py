"""A bounded pool of reusable chunk scratch buffers.

Producers encode records directly into a chunk-sized ``bytearray`` with
header headroom (see :class:`~repro.wire.chunk.ChunkBuilder`); this pool
lets a client's builders share those buffers instead of allocating one
per builder. Buffers are rented for a builder's lifetime and returned on
:meth:`~repro.wire.chunk.ChunkBuilder.close`; a bounded free list caps
steady-state memory while bursts simply allocate.

The pool is shared across producer threads in the live drivers, so the
free list is lock-protected (rule A001). It is never reachable from the
simulation roots — builders there are constructed without a pool.
"""

from __future__ import annotations

import threading

from repro.common.errors import StorageError


class BufferPool:
    """Fixed-size ``bytearray`` rental with a bounded free list."""

    def __init__(self, buffer_size: int, *, max_free: int = 64) -> None:
        if buffer_size <= 0:
            raise StorageError("pool buffer_size must be positive")
        if max_free < 0:
            raise StorageError("pool max_free must be >= 0")
        self.buffer_size = buffer_size
        self.max_free = max_free
        self._lock = threading.Lock()
        self._free: list[bytearray] = []  # guarded-by: _lock
        self._rented = 0  # guarded-by: _lock
        self._allocated = 0  # guarded-by: _lock

    def rent(self) -> bytearray:
        """A zero-filled-or-recycled buffer of :attr:`buffer_size` bytes.

        Contents are unspecified — renters overwrite what they use.
        """
        with self._lock:
            self._rented += 1
            if self._free:
                return self._free.pop()
            self._allocated += 1
        return bytearray(self.buffer_size)

    def release(self, buffer: bytearray) -> None:
        """Return a rented buffer. Wrong-sized buffers are rejected — a
        resize would corrupt the next renter's framing assumptions."""
        if len(buffer) != self.buffer_size:
            raise StorageError(
                f"released buffer of {len(buffer)} bytes into a pool of "
                f"{self.buffer_size}-byte buffers"
            )
        with self._lock:
            self._rented -= 1
            if len(self._free) < self.max_free:
                self._free.append(buffer)

    @property
    def rented(self) -> int:
        """Buffers currently out with renters."""
        with self._lock:
            return self._rented

    @property
    def free(self) -> int:
        """Buffers waiting on the free list."""
        with self._lock:
            return len(self._free)

    @property
    def allocated(self) -> int:
        """Total buffers ever allocated (growth diagnostic)."""
        with self._lock:
            return self._allocated
