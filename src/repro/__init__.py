"""repro — virtual log-structured storage for high-performance streaming.

A from-scratch reproduction of Marcu et al., *"Virtual Log-Structured
Storage for High-Performance Streaming"* (IEEE CLUSTER 2021): the KerA
ingestion system with shared replicated **virtual logs** (separating
stream partitioning from replication), an Apache Kafka baseline, and the
deterministic discrete-event cluster substrate that regenerates every
figure of the paper's evaluation.

Most users want one of:

* :class:`repro.kera.InprocKeraCluster` + :class:`repro.kera.KeraProducer`
  / :class:`repro.kera.KeraConsumer` — a live in-process cluster with real
  bytes end to end;
* :class:`repro.kera.ThreadedKeraCluster` — the same data path under real
  thread-level concurrency (one worker pool per node service);
* :class:`repro.kera.SimKeraCluster` / :class:`repro.kafka.SimKafkaCluster`
  — simulated 4-broker experiments (the benchmark substrate);
* :func:`repro.bench.run_figure` — regenerate a paper figure.

See README.md for the architecture map and DESIGN.md for the
paper-to-module inventory.
"""

from repro.common.units import KB, MB, GB, MSEC, USEC
from repro.storage.config import StorageConfig
from repro.replication.config import PolicyMode, ReplicationConfig
from repro.sim.costmodel import CostModel
from repro.simdriver import SimWorkload, SimResult
from repro.kera import (
    KeraConfig,
    InprocKeraCluster,
    ThreadedKeraCluster,
    KeraProducer,
    KeraConsumer,
    SimKeraCluster,
    recover_broker,
)
from repro.kafka import KafkaConfig, SimKafkaCluster
from repro.runtime import ClusterRuntime, InprocTransport, SimTransport, ThreadedTransport

__version__ = "1.0.0"

__all__ = [
    "KB",
    "MB",
    "GB",
    "MSEC",
    "USEC",
    "StorageConfig",
    "PolicyMode",
    "ReplicationConfig",
    "CostModel",
    "SimWorkload",
    "SimResult",
    "KeraConfig",
    "InprocKeraCluster",
    "ThreadedKeraCluster",
    "ClusterRuntime",
    "InprocTransport",
    "SimTransport",
    "ThreadedTransport",
    "KeraProducer",
    "KeraConsumer",
    "SimKeraCluster",
    "recover_broker",
    "KafkaConfig",
    "SimKafkaCluster",
    "__version__",
]
