"""The live failover coordinator: fence, re-plan, parallel fast recovery.

On a :class:`~repro.failover.detector.BrokerDown` verdict the plane runs
the recovery state machine::

    DETECTED -> FENCED -> REPLAYING -> REROUTED -> DONE

1. **Fence** the dead node (:meth:`LiveKeraCluster.fence_node`): its
   broker service starts refusing requests with a typed
   ``NotLeaderError``, its shipper halts, and its in-flight produces
   fail over instead of hanging.
2. **Plan** with ``plan_recovery(..., defer_routing=True)``: the
   catalog keeps pointing at the fenced broker until replay finishes —
   re-routing retries early would let a retried ``chunk_seq`` land
   ahead of the replayed acked prefix and be deduplicated *against* it
   (acked-record loss).
3. **Repair** the survivors' copy counts (each survivor's shipper swaps
   the dead backup out of its virtual segments and re-ships durable
   prefixes — ordered, because it all flows through one shipper thread).
4. **Read lanes, in parallel**: one lane per (new leader, surviving
   backup) pair pulls the backup's virtual segments for the dead broker
   and keeps the chunks the lane's leader will own — RAMCloud's
   partitioned recovery read. Lanes are timed; overlapping lanes are the
   measured recovery parallelism.
5. **Replay lanes, in parallel per leader**: each new leader merges its
   lanes' copies (longest-prefix-wins, repair echoes collapsed) and
   replays them through the *ordinary* produce path — exactly-once
   dedup and per-(streamlet, entry) ordering hold by construction.
6. **Commit**: ``commit_recovery`` flips the catalog; clients refresh
   routing and retries land on the new leaders. The dead broker's
   backup data is dropped from the survivors.

Every failure on this path lands in :attr:`FailoverReport.error` as a
typed exception (``ReplicationError`` for a cluster too small to keep
the copy count, ``RecoveryError`` for merge divergence) — recovery is
refused loudly, never silently lossy.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import ReplicationError
from repro.kera.coordinator import RecoveryPlan
from repro.kera.live import CLIENT_NODE, LiveKeraCluster
from repro.kera.messages import ProduceRequest
from repro.kera.recovery import merge_backup_copies
from repro.failover.detector import BrokerDown, FailureDetector
from repro.wire.chunk import Chunk


@dataclass
class RecoveryLane:
    """One timed unit of parallel recovery work."""

    leader: int
    backup: int
    #: ``"read"`` (pull one backup's copies) or ``"replay"`` (produce a
    #: leader's merged chunks); replay lanes have ``backup == -1``.
    phase: str
    started: float = 0.0
    finished: float = 0.0
    vsegs: int = 0
    chunks: int = 0

    @property
    def duration(self) -> float:
        return max(self.finished - self.started, 0.0)


@dataclass
class FailoverReport:
    """What one node's live recovery did, with timing evidence."""

    verdict: BrokerDown
    recovery_seconds: float = 0.0
    #: (stream, streamlet) -> new leader, as committed.
    reassignments: dict[tuple[int, int], int] = field(default_factory=dict)
    vsegs_merged: int = 0
    chunks_replayed: int = 0
    records_replayed: int = 0
    duplicates_dropped: int = 0
    lanes: list[RecoveryLane] = field(default_factory=list)
    #: Typed refusal / failure; None on success.
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def parallelism(self) -> int:
        """Maximum number of recovery lanes open at the same instant —
        the timed evidence that recovery ran in parallel."""
        events: list[tuple[float, int]] = []
        for lane in self.lanes:
            if lane.finished > lane.started:
                events.append((lane.started, 1))
                events.append((lane.finished, -1))
        best = current = 0
        for _, delta in sorted(events):
            current += delta
            best = max(best, current)
        return best


class FailoverPlane:
    """Owns a detector and recovers nodes it declares dead."""

    def __init__(
        self,
        cluster: LiveKeraCluster,
        *,
        heartbeat_interval: float = 0.1,
        lease_timeout: float = 1.0,
        replay_timeout: float = 30.0,
    ) -> None:
        self.cluster = cluster
        self.replay_timeout = replay_timeout
        self.detector = FailureDetector(
            cluster,
            heartbeat_interval=heartbeat_interval,
            lease_timeout=lease_timeout,
            on_down=self._on_down,
        )
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._recovering: set[int] = set()  # guarded-by: _lock
        self.reports: dict[int, FailoverReport] = {}  # guarded-by: _lock
        cluster.install_failover(self)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "FailoverPlane":
        self.detector.start()
        return self

    def stop(self) -> None:
        self.detector.stop()

    def __enter__(self) -> "FailoverPlane":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- entry points -------------------------------------------------------

    def note_node_failure(self, node_id: int, error: BaseException) -> bool:
        """A survivor's replicate RPC to ``node_id`` failed (transport or
        shipper thread). Claim the node: fence it so nothing else routes
        there, and hand the detector the verdict. Returns True — the
        caller (the shipper) repairs and continues instead of dying."""
        self.cluster.fence_node(node_id)
        self.detector.report_dead(
            node_id,
            f"replicate to node {node_id} failed: {error}",
            source="replicate-error",
        )
        return True

    def wait_recovered(
        self, node_id: int, timeout: float = 30.0
    ) -> FailoverReport | None:
        """Block until ``node_id``'s recovery finished; None on timeout."""
        deadline = time.monotonic() + timeout
        with self._done:
            while node_id not in self.reports:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._done.wait(remaining)
            return self.reports[node_id]

    # -- recovery (detector thread) -----------------------------------------

    def _on_down(self, verdict: BrokerDown) -> None:
        with self._lock:
            if verdict.node_id in self.reports or verdict.node_id in self._recovering:
                return
            self._recovering.add(verdict.node_id)
        report = self._recover(verdict)
        with self._lock:
            # _done wraps _lock, so holding it here lets notify_all run.
            self._recovering.discard(verdict.node_id)
            self.reports[verdict.node_id] = report
            self._done.notify_all()

    def _recover(self, verdict: BrokerDown) -> FailoverReport:
        cluster = self.cluster
        report = FailoverReport(verdict=verdict)
        started = time.monotonic()
        try:
            # DETECTED -> FENCED
            cluster.fence_node(verdict.node_id)
            copies = cluster.config.replication.num_backup_copies
            survivors = cluster.live_broker_ids
            if copies and len(survivors) - 1 < copies:
                # Typed refusal: recovering would silently under-replicate.
                raise ReplicationError(
                    f"cluster too small after losing node {verdict.node_id}: "
                    f"need {copies} backups per broker, "
                    f"have {len(survivors) - 1} candidates"
                )
            plan = cluster.coordinator.plan_recovery(
                verdict.node_id, defer_routing=True
            )
            report.reassignments = dict(plan.reassignments)
            cluster.repair_backups_for(verdict.node_id)
            # FENCED -> REPLAYING
            self._read_and_replay(verdict.node_id, plan, report)
            # REPLAYING -> REROUTED
            cluster.coordinator.commit_recovery(plan)
            for node in sorted(cluster.backups):
                if node != verdict.node_id and not cluster.is_failed(node):
                    cluster.backup_drop_broker(node, verdict.node_id)
        except BaseException as exc:  # noqa: BLE001 - typed refusal, never silent
            report.error = exc
        report.recovery_seconds = time.monotonic() - started
        return report

    def _read_and_replay(
        self, failed: int, plan: RecoveryPlan, report: FailoverReport
    ) -> None:
        cluster = self.cluster
        leaders = sorted(set(plan.reassignments.values()))
        backups = [
            node
            for node in sorted(cluster.backups)
            if node != failed and not cluster.is_failed(node)
        ]
        if not leaders:
            return  # the dead broker led nothing: fencing was the recovery
        # One read lane per (new leader, surviving backup): each lane
        # pulls that backup's virtual segments for the dead broker and
        # keeps the chunks its leader will own, preserving vseg
        # structure (a filtered prefix is still a prefix, so the merge's
        # consistency check holds on the filtered runs).
        copies: dict[tuple[int, int], list[tuple[int, list[Chunk]]]] = {}
        copies_lock = threading.Lock()
        errors: list[BaseException] = []

        def read_lane(lane: RecoveryLane) -> None:
            lane.started = time.monotonic()
            try:
                run = cluster.backup_recovery_chunks(lane.backup, failed)
                mine: list[tuple[int, list[Chunk]]] = []
                for vseg_id, chunks in run:
                    kept = [
                        c
                        for c in chunks
                        if plan.reassignments.get((c.stream_id, c.streamlet_id))
                        == lane.leader
                    ]
                    if kept:
                        mine.append((vseg_id, kept))
                lane.vsegs = len(mine)
                lane.chunks = sum(len(chunks) for _, chunks in mine)
                with copies_lock:
                    copies[(lane.leader, lane.backup)] = mine
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                with copies_lock:
                    errors.append(exc)
            finally:
                lane.finished = time.monotonic()

        read_lanes = [
            RecoveryLane(leader=leader, backup=backup, phase="read")
            for leader in leaders
            for backup in backups
        ]
        report.lanes.extend(read_lanes)
        threads = [
            threading.Thread(
                target=read_lane,
                args=(lane,),
                name=f"recovery-read-{lane.leader}-{lane.backup}",
                daemon=True,
            )
            for lane in read_lanes
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

        # Merge each leader's copies (longest prefix wins, repair echoes
        # collapsed) and register the streamlets it is taking over.
        merged_by_leader: dict[int, list[tuple[int, list[Chunk]]]] = {}
        for leader in leaders:
            runs = [copies[(leader, backup)] for backup in backups if (leader, backup) in copies]
            merged = merge_backup_copies(runs)
            merged_by_leader[leader] = merged
            report.vsegs_merged += len(merged)
        for (stream_id, streamlet_id), target in plan.reassignments.items():
            cluster.brokers[target].ensure_streamlet(stream_id, streamlet_id)

        # One replay lane per leader: virtual segments replay in id order
        # (per virtual log, creation order = append order), each through
        # the ordinary produce path so exactly-once dedup and per-
        # (streamlet, entry) ordering hold. Leaders replay in parallel —
        # a (stream, streamlet, producer) sequence lives entirely within
        # one streamlet, hence one leader, so cross-leader order is free.
        replay_lanes = {
            leader: RecoveryLane(leader=leader, backup=-1, phase="replay")
            for leader in leaders
            if merged_by_leader[leader]
        }
        report.lanes.extend(replay_lanes.values())
        tallies_lock = threading.Lock()

        def replay_lane(lane: RecoveryLane) -> None:
            lane.started = time.monotonic()
            try:
                for _vseg_id, chunks in merged_by_leader[lane.leader]:
                    request = ProduceRequest(
                        request_id=cluster._next_request_id(),
                        producer_id=0,  # per-chunk producer ids drive dedup
                        chunks=chunks,
                    )
                    response = cluster.transport.call(
                        CLIENT_NODE,
                        lane.leader,
                        "broker",
                        "produce",
                        request,
                        request.payload_bytes(),
                    )
                    lane.vsegs += 1
                    lane.chunks += len(chunks)
                    with tallies_lock:
                        for assignment, chunk in zip(
                            response.assignments, chunks, strict=True
                        ):
                            if assignment.duplicate:
                                report.duplicates_dropped += 1
                            else:
                                report.chunks_replayed += 1
                                report.records_replayed += chunk.record_count
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                with copies_lock:
                    errors.append(exc)
            finally:
                lane.finished = time.monotonic()

        threads = [
            threading.Thread(
                target=replay_lane,
                args=(lane,),
                name=f"recovery-replay-{leader}",
                daemon=True,
            )
            for leader, lane in replay_lanes.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(self.replay_timeout)
        if errors:
            raise errors[0]
