"""Failure detection: transport liveness first, heartbeat leases second.

The detector turns "node N is dead" into a typed :class:`BrokerDown`
verdict, delivered exactly once per node. It listens on two channels:

* **transport liveness** — the authoritative signal. The process and
  socket transports notice a dead worker (a reaped child process, an
  unexpected EOF on a worker connection) on their own reaper/reader
  threads and call the settable ``liveness_listener`` hook; the
  detector attaches itself there on :meth:`FailureDetector.start`.
* **heartbeat leases** — the fallback for failure modes the transport
  cannot see (a wedged broker service). The detector pings each live
  broker's ``ping`` method; every ack renews the node's lease, and a
  lease that expires without an ack yields a ``"heartbeat"`` verdict.

Anything else (a survivor's replicate RPC failing, chaos tooling) can
:meth:`~FailureDetector.report_dead` explicitly; the first report per
node wins, the rest are dropped, so downstream recovery runs once.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.kera.live import CLIENT_NODE, LiveKeraCluster


@dataclass(frozen=True)
class BrokerDown:
    """Typed verdict: one node of the cluster is dead."""

    node_id: int
    reason: str
    #: Detection channel: ``"process-exit"`` (reaped worker process),
    #: ``"socket-eof"`` / ``"socket-error"`` (broken worker connection),
    #: ``"heartbeat"`` (missed lease deadline), ``"replicate-error"``
    #: (a survivor's replicate RPC failed), or ``"report"`` (explicit).
    source: str


#: Delivery callback: invoked once per dead node, on the detector thread.
DownListener = Callable[[BrokerDown], None]


class FailureDetector:
    """Heartbeat/lease tracking plus transport-level liveness."""

    def __init__(
        self,
        cluster: LiveKeraCluster,
        *,
        heartbeat_interval: float = 0.1,
        lease_timeout: float = 1.0,
        on_down: DownListener | None = None,
    ) -> None:
        self.cluster = cluster
        self.heartbeat_interval = heartbeat_interval
        self.lease_timeout = lease_timeout
        self.on_down = on_down
        self._lock = threading.Lock()
        self._down: dict[int, BrokerDown] = {}  # guarded-by: _lock
        self._undelivered: list[BrokerDown] = []  # guarded-by: _lock
        self._leases: dict[int, float] = {}  # guarded-by: _lock
        self._ping_inflight: set[int] = set()  # guarded-by: _lock
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        now = time.monotonic()
        with self._lock:
            for node in self.cluster.live_broker_ids:
                self._leases[node] = now + self.lease_timeout
        transport = self.cluster.transport
        if hasattr(transport, "liveness_listener"):
            # Transports never import this package; detectors attach
            # themselves to the settable hook (failover -> runtime).
            transport.liveness_listener = self._transport_down
        self._thread = threading.Thread(
            target=self._run, name="failure-detector", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stopping.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        transport = self.cluster.transport
        # == not `is`: each bound-method access is a fresh object.
        if getattr(transport, "liveness_listener", None) == self._transport_down:
            transport.liveness_listener = None

    # -- verdicts -----------------------------------------------------------

    def is_down(self, node_id: int) -> bool:
        with self._lock:
            return node_id in self._down

    def verdicts(self) -> list[BrokerDown]:
        with self._lock:
            return [self._down[n] for n in sorted(self._down)]

    def report_dead(self, node_id: int, reason: str, source: str = "report") -> bool:
        """Record a node death (any thread). Returns False when the node
        was already known dead — the first verdict per node wins, so the
        downstream ``on_down`` recovery runs exactly once."""
        verdict = BrokerDown(node_id=node_id, reason=reason, source=source)
        with self._lock:
            if node_id in self._down:
                return False
            self._down[node_id] = verdict
            self._undelivered.append(verdict)
        self._wake.set()
        return True

    def _transport_down(
        self, node_id: int, service: str, source: str, reason: str
    ) -> None:
        # Node-level failure model: losing any worker of a node (its
        # backup process, in every current driver) kills the whole node.
        self.report_dead(node_id, reason, source=source)

    # -- detector thread ----------------------------------------------------

    def _run(self) -> None:
        while not self._stopping.is_set():
            self._wake.wait(timeout=self.heartbeat_interval)
            self._wake.clear()
            if self._stopping.is_set():
                return
            self._deliver()
            self._heartbeat()

    def _deliver(self) -> None:
        while True:
            with self._lock:
                if not self._undelivered:
                    return
                verdict = self._undelivered.pop(0)
            if self.on_down is not None:
                self.on_down(verdict)

    def _heartbeat(self) -> None:
        now = time.monotonic()
        for node in self.cluster.live_broker_ids:
            with self._lock:
                if node in self._down:
                    continue
                lease = self._leases.setdefault(node, now + self.lease_timeout)
                if now <= lease and node in self._ping_inflight:
                    continue
            if now > lease:
                self.report_dead(
                    node,
                    f"no heartbeat ack from node {node} within "
                    f"{self.lease_timeout}s lease",
                    source="heartbeat",
                )
                continue
            with self._lock:
                self._ping_inflight.add(node)
            try:
                self.cluster.transport.call_async(
                    CLIENT_NODE,
                    node,
                    "broker",
                    "ping",
                    None,
                    0,
                    on_done=lambda _resp, err, n=node: self._on_ping(n, err),
                )
            except BaseException:  # noqa: BLE001 - submit failed: no renewal
                with self._lock:
                    self._ping_inflight.discard(node)
                # The lease keeps running down; expiry yields the verdict.

    def _on_ping(self, node: int, error: BaseException | None) -> None:
        with self._lock:
            self._ping_inflight.discard(node)
            if error is None:
                self._leases[node] = time.monotonic() + self.lease_timeout
