"""Chaos harness: SIGKILL a node under live load and prove zero loss.

The harness drives a live cluster with concurrent pinned producers,
kills one broker node mid-stream (a real ``SIGKILL`` of its worker
process on the process/socket drivers, a fence + explicit verdict on
the purely in-parent threaded driver), waits for the failover plane to
recover, and then audits the log: **every record whose produce call
returned acked must be fetchable afterwards** — acked-then-lost is the
one outcome chaos exists to rule out.

Producers retry on the typed routing/replication errors the failover
path emits (``NotLeaderError`` while the dead broker is fenced and the
catalog not yet re-routed, ``ReplicationError``/``RpcError`` for
transport casualties), re-sending the *same* chunk object: an unchanged
``(producer, streamlet, chunk_seq)`` makes the retry idempotent under
the broker's duplicate detection, so a lost ack never double-writes.

This module touches ``os``/``signal`` and threads; it is deliberately
not imported from ``repro.failover.__init__`` so nothing sim-reachable
ever pulls it in (checked by the A002 purity rule).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import NotLeaderError, ReplicationError, RpcError
from repro.failover.plane import FailoverPlane, FailoverReport
from repro.kera.live import LiveKeraCluster
from repro.kera.messages import FetchPosition
from repro.wire.chunk import ChunkBuilder
from repro.wire.record import Record, encode_records

#: Errors a producer treats as "refresh routing and retry the same chunk".
RETRYABLE = (NotLeaderError, ReplicationError, RpcError)


def kill_node(cluster: LiveKeraCluster, node_id: int) -> str:
    """Kill one node as brutally as the driver allows.

    Process-backed drivers get a real ``SIGKILL`` of the node's worker
    process — detection must then come from transport liveness (a reaped
    child, a broken socket). The threaded driver has no per-node process
    to shoot, so the harness fences the node and hands the detector an
    explicit verdict. Returns the mode used (``"sigkill"``/``"fence"``).
    """
    pid_fn = getattr(cluster.transport, "worker_pid", None)
    if pid_fn is not None:
        pid = pid_fn(node_id, "backup")
        if pid is not None:
            os.kill(pid, signal.SIGKILL)
            return "sigkill"
    cluster.fence_node(node_id)
    plane = cluster._failover
    if isinstance(plane, FailoverPlane):
        plane.detector.report_dead(
            node_id, f"chaos kill of node {node_id}", source="report"
        )
    return "fence"


@dataclass
class ChaosResult:
    """What one chaos run did, with the loss audit."""

    victim: int
    kill_mode: str
    report: FailoverReport | None
    #: (producer, seq) pairs whose produce call returned before stop.
    acked: int = 0
    #: Acked pairs found in the post-recovery log.
    verified: int = 0
    #: Acked pairs missing from the log — must be empty.
    lost: list[tuple[int, int]] = field(default_factory=list)
    #: Records fetched that appeared more than once — must be empty.
    duplicated: list[tuple[int, int]] = field(default_factory=list)
    retries: int = 0
    #: Producers that exhausted their retry budget (their error).
    producer_errors: list[BaseException] = field(default_factory=list)
    throughput_before: float = 0.0
    throughput_during: float = 0.0

    @property
    def zero_loss(self) -> bool:
        return not self.lost and not self.duplicated

    @property
    def recovery_ms(self) -> float:
        return 0.0 if self.report is None else self.report.recovery_seconds * 1000.0

    @property
    def parallelism(self) -> int:
        return 0 if self.report is None else self.report.parallelism

    @property
    def throughput_dip(self) -> float:
        """Fractional throughput lost during the recovery window versus
        the pre-kill window (0.0 = no dip, 1.0 = full stall)."""
        if self.throughput_before <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.throughput_during / self.throughput_before)


class _Producer(threading.Thread):
    """One pinned producer: single-record chunks, retry-same-chunk."""

    def __init__(
        self,
        cluster: LiveKeraCluster,
        stream_id: int,
        streamlet_id: int,
        producer_id: int,
        stop: threading.Event,
        retry_timeout: float,
    ) -> None:
        super().__init__(name=f"chaos-producer-{producer_id}", daemon=True)
        self.cluster = cluster
        self.stream_id = stream_id
        self.streamlet_id = streamlet_id
        self.producer_id = producer_id
        self.stop_event = stop
        self.retry_timeout = retry_timeout
        #: (seq, monotonic ack time) for every acked produce.
        self.acked: list[tuple[int, float]] = []
        self.retries = 0
        self.error: BaseException | None = None

    def run(self) -> None:
        seq = 0
        while not self.stop_event.is_set():
            payload = f"p{self.producer_id}-{seq}".encode()
            builder = ChunkBuilder(
                128 + len(payload),
                stream_id=self.stream_id,
                streamlet_id=self.streamlet_id,
                producer_id=self.producer_id,
            )
            builder.try_append_encoded(encode_records([Record(value=payload)]), 1)
            chunk = builder.build(seq)
            deadline = time.monotonic() + self.retry_timeout
            backoff = 0.01
            while True:
                try:
                    self.cluster.produce([chunk], producer_id=self.producer_id)
                    break
                except RETRYABLE as exc:
                    # Typed, retryable: the broker is fenced / moving.
                    # Same chunk object, same chunk_seq — the broker's
                    # dedup makes the retry exactly-once.
                    self.retries += 1
                    if time.monotonic() >= deadline:
                        self.error = exc
                        return
                    time.sleep(backoff)
                    backoff = min(backoff * 2.0, 0.2)
            self.acked.append((seq, time.monotonic()))
            seq += 1


def _fetch_all_values(
    cluster: LiveKeraCluster, stream_id: int, num_streamlets: int
) -> list[bytes]:
    """Every record value durable in the stream, across all streamlets
    and active groups, paged to exhaustion."""
    values: list[bytes] = []
    q = cluster.config.storage.q_active_groups
    for sid in range(num_streamlets):
        for entry in range(q):
            position = FetchPosition(stream_id, sid, entry)
            while True:
                response = cluster.fetch(
                    [position], consumer_id=9_000 + sid, max_chunks_per_entry=64
                )[0]
                got = 0
                for fetch_entry in response.entries:
                    for chunk in fetch_entry.chunks:
                        records = chunk.records(verify=True)
                        got += len(records)
                        values.extend(r.value for r in records)
                    position = fetch_entry.next_position
                if got == 0:
                    break
    return values


def run_chaos(
    cluster: LiveKeraCluster,
    plane: FailoverPlane,
    *,
    stream_id: int = 7,
    num_streamlets: int | None = None,
    producers: int = 8,
    warmup_seconds: float = 0.4,
    post_seconds: float = 0.4,
    victim: int | None = None,
    recovery_timeout: float = 30.0,
    retry_timeout: float = 20.0,
) -> ChaosResult:
    """Kill one broker node under live load; audit for acked-record loss.

    Runs ``producers`` pinned producer threads against ``stream_id``
    (created here, ``num_streamlets`` defaulting to the producer count
    capped at 2× brokers), SIGKILLs the victim after ``warmup_seconds``,
    waits for the plane to report recovery, keeps the load running for
    ``post_seconds``, then fetches the whole stream back and checks every
    acked ``(producer, seq)`` is present exactly once.
    """
    if num_streamlets is None:
        num_streamlets = min(producers, 2 * len(cluster.brokers))
    cluster.create_stream(stream_id, num_streamlets)
    if victim is None:
        victim = cluster.leader_of(stream_id, 0)

    stop = threading.Event()
    workers = [
        _Producer(
            cluster, stream_id, pid % num_streamlets, pid, stop, retry_timeout
        )
        for pid in range(producers)
    ]
    for worker in workers:
        worker.start()
    time.sleep(warmup_seconds)

    kill_time = time.monotonic()
    kill_mode = kill_node(cluster, victim)
    report = plane.wait_recovered(victim, timeout=recovery_timeout)
    time.sleep(post_seconds)
    stop.set()
    for worker in workers:
        worker.join(timeout=retry_timeout + 10.0)

    result = ChaosResult(victim=victim, kill_mode=kill_mode, report=report)
    acked: set[tuple[int, int]] = set()
    ack_times: list[float] = []
    for worker in workers:
        result.retries += worker.retries
        if worker.error is not None:
            result.producer_errors.append(worker.error)
        for seq, at in worker.acked:
            acked.add((worker.producer_id, seq))
            ack_times.append(at)
    result.acked = len(acked)

    # Throughput windows around the kill: the "dip" is how much of the
    # steady-state ack rate the recovery window lost.
    window = max(warmup_seconds, 0.05)
    before = sum(1 for at in ack_times if kill_time - window <= at < kill_time)
    result.throughput_before = before / window
    if report is not None and report.recovery_seconds > 0.0:
        during = sum(
            1
            for at in ack_times
            if kill_time <= at < kill_time + report.recovery_seconds
        )
        result.throughput_during = during / report.recovery_seconds

    # The audit: every acked record must be in the log, exactly once.
    seen: dict[tuple[int, int], int] = {}
    for value in _fetch_all_values(cluster, stream_id, num_streamlets):
        text = value.decode()
        if not text.startswith("p"):
            continue
        pid_s, _, seq_s = text[1:].partition("-")
        key = (int(pid_s), int(seq_s))
        seen[key] = seen.get(key, 0) + 1
    for key in sorted(acked):
        count = seen.get(key, 0)
        if count == 0:
            result.lost.append(key)
        elif count > 1:
            result.duplicated.append(key)
    result.verified = result.acked - len(result.lost)
    return result
