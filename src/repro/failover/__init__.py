"""Live failover: failure detection, fencing, parallel fast recovery.

This package makes broker death a survivable, measured event on the
live drivers (threaded/process/socket):

* :mod:`repro.failover.detector` — heartbeat/lease tracking with typed
  :class:`BrokerDown` verdicts, driven by transport-level liveness (a
  reaped worker process, an unexpectedly closed worker socket) rather
  than wall-clock guesses;
* :mod:`repro.failover.plane` — the live failover coordinator: fence
  the dead broker, re-plan its streamlets over the survivors, read the
  surviving backups' virtual segments in parallel recovery lanes, and
  replay them through the ordinary produce path (RAMCloud-style fast
  recovery, paper Section IV-B);
* :mod:`repro.failover.chaos` — SIGKILL-under-load harness (imported
  lazily: it touches ``os``/``signal`` and must never ride along into
  sim-reachable code).

Nothing here is importable from the simulation roots: the transports
expose settable ``liveness_listener`` attributes instead of importing
this package, so the dependency always points failover → runtime.
"""

from repro.failover.detector import BrokerDown, FailureDetector
from repro.failover.plane import FailoverPlane, FailoverReport, RecoveryLane

__all__ = [
    "BrokerDown",
    "FailureDetector",
    "FailoverPlane",
    "FailoverReport",
    "RecoveryLane",
]
