"""Gateway frame kinds and packed payload forms.

Every gateway message rides in one :mod:`repro.wire.netframe` frame; the
payload forms here are packed structs, not pickles — the gateway fronts
untrusted client connections, and a struct layout bounds what a malformed
payload can do (a typed decode error on this side, never arbitrary
object construction).

Layout invariant shared by every kind: the payload begins with the
``u64`` request id, so a server that fails to decode the rest can still
address its error frame, and the client reader can correlate any
response kind without knowing its shape.

Chunk bytes cross this boundary *verbatim*: produce payloads embed the
producer-built chunk frames (header + payload, CRC stamped at build
time), fetch responses embed the broker's frame views. Each side
re-validates CRCs on receipt (``decode_chunk(verify=True)``) because the
bytes crossed an address space — the same discipline as the replication
plane's ``frames_verified=False``.
"""

from __future__ import annotations

import re
import struct
from collections.abc import Sequence

from repro.common.errors import NotLeaderError, RetriableRpcError, RpcError
from repro.wire.chunk import Chunk, decode_chunk
from repro.wire.netframe import BufferPart
from repro.kera.messages import ChunkAssignment, FetchPosition

#: Frame kinds (the socket transport owns 1-8; the gateway owns 10+).
GW_PRODUCE = 10
GW_PRODUCE_OK = 11
GW_FETCH = 12
GW_FETCH_OK = 13
GW_ERROR = 14
GW_CREATE_STREAM = 15
GW_OK = 16
GW_META = 17
GW_META_OK = 18

_REQUEST_ID = struct.Struct("<Q")
_PRODUCE_HEAD = struct.Struct("<QqI")  # request_id, producer_id, nchunks
_U32 = struct.Struct("<I")
_PRODUCE_OK_HEAD = struct.Struct("<QI")  # request_id, nassignments
#: stream, streamlet, group, segment, offset, duplicate
_ASSIGNMENT = struct.Struct("<qqqqqB")
_FETCH_HEAD = struct.Struct("<QqII")  # request_id, consumer_id, max_chunks, npositions
#: stream, streamlet, entry, group_pos, chunk_pos, seek_record (-1 = none)
_POSITION = struct.Struct("<qqqqqq")
_FETCH_OK_HEAD = struct.Struct("<QI")  # request_id, nentries
_ENTRY_HEAD = struct.Struct("<I")  # nchunks (after position + next_position)
_CREATE_STREAM = struct.Struct("<Qqq")  # request_id, stream_id, num_streamlets
_OK_HEAD = struct.Struct("<Q")
_META_REQ = struct.Struct("<Qq")  # request_id, stream_id
_META_OK_HEAD = struct.Struct("<QqqI")  # request_id, q_active, chunk_size, nstreamlets
_I64 = struct.Struct("<q")


class GatewayError(RpcError):
    """A request failed server-side; carries the relayed message."""


# -- produce -----------------------------------------------------------------


def encode_produce(
    request_id: int, producer_id: int, frames: Sequence[BufferPart]
) -> list[BufferPart]:
    """Client side: chunk frames go out verbatim (length-prefixed each)."""
    parts: list[BufferPart] = [_PRODUCE_HEAD.pack(request_id, producer_id, len(frames))]
    for frame in frames:
        parts.append(_U32.pack(len(frame)))
        parts.append(frame)
    return parts


def decode_produce(
    payload: bytes | memoryview, *, verify: bool = True
) -> tuple[int, int, list[Chunk]]:
    """Server side: re-validate every chunk CRC at the trust boundary.

    With ``verify=False`` the structural decode still happens but the CRC
    check is deferred: chunks come back with ``verified=False`` and the
    caller owes the re-validation before the bytes reach the data plane
    (the gateway batch-verifies off the loop thread in its coalescer).
    """
    request_id, producer_id, nchunks = _PRODUCE_HEAD.unpack_from(payload, 0)
    offset = _PRODUCE_HEAD.size
    chunks: list[Chunk] = []
    for _ in range(nchunks):
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        chunk, end = decode_chunk(payload, offset, verify=verify)
        if end != offset + length:
            raise GatewayError(
                f"chunk frame length mismatch: declared {length}, "
                f"decoded {end - offset}"
            )
        # The produce path re-ships these bytes to the replication plane;
        # caching the verbatim frame keeps the encode-once discipline.
        chunk.wire = bytes(payload[offset:end])
        chunks.append(chunk)
        offset = end
    return request_id, producer_id, chunks


def encode_produce_ok(
    request_id: int, assignments: Sequence[ChunkAssignment]
) -> list[BufferPart]:
    parts: list[BufferPart] = [_PRODUCE_OK_HEAD.pack(request_id, len(assignments))]
    for a in assignments:
        parts.append(
            _ASSIGNMENT.pack(
                a.stream_id,
                a.streamlet_id,
                a.group_id,
                a.segment_id,
                a.offset,
                1 if a.duplicate else 0,
            )
        )
    return parts


def decode_produce_ok(payload: bytes | memoryview) -> tuple[int, list[ChunkAssignment]]:
    request_id, count = _PRODUCE_OK_HEAD.unpack_from(payload, 0)
    offset = _PRODUCE_OK_HEAD.size
    assignments: list[ChunkAssignment] = []
    for _ in range(count):
        stream, streamlet, group, segment, off, dup = _ASSIGNMENT.unpack_from(
            payload, offset
        )
        offset += _ASSIGNMENT.size
        assignments.append(
            ChunkAssignment(
                stream_id=stream,
                streamlet_id=streamlet,
                group_id=group,
                segment_id=segment,
                offset=off,
                duplicate=bool(dup),
            )
        )
    return request_id, assignments


# -- fetch -------------------------------------------------------------------


def _pack_position(pos: FetchPosition) -> bytes:
    seek = -1 if pos.seek_record is None else pos.seek_record
    return _POSITION.pack(
        pos.stream_id, pos.streamlet_id, pos.entry, pos.group_pos, pos.chunk_pos, seek
    )


def _unpack_position(payload: bytes | memoryview, offset: int) -> FetchPosition:
    stream, streamlet, entry, group_pos, chunk_pos, seek = _POSITION.unpack_from(
        payload, offset
    )
    return FetchPosition(
        stream_id=stream,
        streamlet_id=streamlet,
        entry=entry,
        group_pos=group_pos,
        chunk_pos=chunk_pos,
        seek_record=None if seek < 0 else seek,
    )


def encode_fetch(
    request_id: int,
    consumer_id: int,
    positions: Sequence[FetchPosition],
    max_chunks_per_entry: int,
) -> list[BufferPart]:
    parts: list[BufferPart] = [
        _FETCH_HEAD.pack(request_id, consumer_id, max_chunks_per_entry, len(positions))
    ]
    parts.extend(_pack_position(pos) for pos in positions)
    return parts


def decode_fetch(
    payload: bytes | memoryview,
) -> tuple[int, int, int, list[FetchPosition]]:
    request_id, consumer_id, max_chunks, npositions = _FETCH_HEAD.unpack_from(
        payload, 0
    )
    offset = _FETCH_HEAD.size
    positions: list[FetchPosition] = []
    for _ in range(npositions):
        positions.append(_unpack_position(payload, offset))
        offset += _POSITION.size
    return request_id, consumer_id, max_chunks, positions


def encode_fetch_ok(
    request_id: int,
    entries: Sequence[tuple[FetchPosition, FetchPosition, Sequence[BufferPart]]],
) -> list[BufferPart]:
    """Server side: ``(position, next_position, chunk frames)`` per entry.

    The frame parts are typically ``ChunkView.frame`` memoryviews served
    out of the fan-out cache — they are handed to the stream writer
    as-is, so cached bytes flow from broker segment memory into the
    socket without an intermediate copy here.
    """
    parts: list[BufferPart] = [_FETCH_OK_HEAD.pack(request_id, len(entries))]
    for position, next_position, frames in entries:
        parts.append(_pack_position(position))
        parts.append(_pack_position(next_position))
        parts.append(_ENTRY_HEAD.pack(len(frames)))
        for frame in frames:
            parts.append(_U32.pack(len(frame)))
            parts.append(frame)
    return parts


def decode_fetch_ok(
    payload: bytes | memoryview,
) -> tuple[int, list[tuple[FetchPosition, FetchPosition, list[Chunk]]]]:
    """Client side: decode + re-validate the fetched chunk frames."""
    request_id, nentries = _FETCH_OK_HEAD.unpack_from(payload, 0)
    offset = _FETCH_OK_HEAD.size
    entries: list[tuple[FetchPosition, FetchPosition, list[Chunk]]] = []
    for _ in range(nentries):
        position = _unpack_position(payload, offset)
        offset += _POSITION.size
        next_position = _unpack_position(payload, offset)
        offset += _POSITION.size
        (nchunks,) = _ENTRY_HEAD.unpack_from(payload, offset)
        offset += _ENTRY_HEAD.size
        chunks: list[Chunk] = []
        for _ in range(nchunks):
            (length,) = _U32.unpack_from(payload, offset)
            offset += _U32.size
            chunk, end = decode_chunk(payload, offset, verify=True)
            if end != offset + length:
                raise GatewayError(
                    f"chunk frame length mismatch: declared {length}, "
                    f"decoded {end - offset}"
                )
            chunks.append(chunk)
            offset = end
        entries.append((position, next_position, chunks))
    return request_id, entries


# -- admin / meta ------------------------------------------------------------


def encode_create_stream(
    request_id: int, stream_id: int, num_streamlets: int
) -> list[BufferPart]:
    return [_CREATE_STREAM.pack(request_id, stream_id, num_streamlets)]


def decode_create_stream(payload: bytes | memoryview) -> tuple[int, int, int]:
    request_id, stream_id, num_streamlets = _CREATE_STREAM.unpack_from(payload, 0)
    return request_id, stream_id, num_streamlets


def encode_ok(request_id: int) -> list[BufferPart]:
    return [_OK_HEAD.pack(request_id)]


def encode_meta(request_id: int, stream_id: int) -> list[BufferPart]:
    return [_META_REQ.pack(request_id, stream_id)]


def decode_meta(payload: bytes | memoryview) -> tuple[int, int]:
    request_id, stream_id = _META_REQ.unpack_from(payload, 0)
    return request_id, stream_id


def encode_meta_ok(
    request_id: int,
    q_active_groups: int,
    chunk_size: int,
    streamlet_ids: Sequence[int],
) -> list[BufferPart]:
    parts: list[BufferPart] = [
        _META_OK_HEAD.pack(request_id, q_active_groups, chunk_size, len(streamlet_ids))
    ]
    parts.extend(_I64.pack(sid) for sid in streamlet_ids)
    return parts


def decode_meta_ok(payload: bytes | memoryview) -> tuple[int, int, int, list[int]]:
    request_id, q_active, chunk_size, count = _META_OK_HEAD.unpack_from(payload, 0)
    offset = _META_OK_HEAD.size
    streamlets: list[int] = []
    for _ in range(count):
        streamlets.append(_I64.unpack_from(payload, offset)[0])
        offset += _I64.size
    return request_id, q_active, chunk_size, streamlets


# -- errors ------------------------------------------------------------------


def encode_error(request_id: int, exc: BaseException) -> list[BufferPart]:
    message = f"{type(exc).__name__}: {exc}"
    return [_REQUEST_ID.pack(request_id), message.encode("utf-8", "replace")]


#: Relayed ``NotLeaderError`` messages, as ``encode_error`` renders them
#: (``str(NotLeaderError(...))`` — see :mod:`repro.common.errors`).
_NOT_LEADER = re.compile(
    r"^NotLeaderError: not leader for stream (-?\d+) streamlet (-?\d+)"
    r"(?: \(leader is broker (\d+)\))?$"
)

#: Server-side exception type names whose relays stay retryable: the
#: condition is transient (a broker mid-failover, replication catching
#: up) and the client should refresh metadata and re-send.
_RETRYABLE_NAMES = frozenset({"RetriableRpcError", "ReplicationError"})


def decode_error(payload: bytes | memoryview) -> tuple[int, RpcError]:
    """Decode an error relay, re-typing the retryable ones.

    A broker that died mid-pipeline surfaces here as the server-side
    ``NotLeaderError`` the fenced broker raised; reconstructing the
    typed error (rather than an opaque :class:`GatewayError`) lets
    pipelined producers refresh routing and retry instead of dying.
    Everything else stays a ``GatewayError``: the gateway fronts an
    untrusted boundary, so only messages matching the known typed
    shapes are promoted — never arbitrary type names.
    """
    (request_id,) = _REQUEST_ID.unpack_from(payload, 0)
    message = bytes(payload[_REQUEST_ID.size :]).decode("utf-8", "replace")
    match = _NOT_LEADER.match(message)
    if match:
        leader = match.group(3)
        return request_id, NotLeaderError(
            int(match.group(1)),
            int(match.group(2)),
            None if leader is None else int(leader),
        )
    name, sep, _ = message.partition(":")
    if sep and name in _RETRYABLE_NAMES:
        return request_id, RetriableRpcError(message)
    return request_id, GatewayError(message)


def peek_request_id(payload: bytes | memoryview) -> int:
    """Every gateway payload leads with its request id (layout invariant)."""
    return int(_REQUEST_ID.unpack_from(payload, 0)[0])
