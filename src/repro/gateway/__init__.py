"""Asyncio client gateway: the cluster's network front door.

A single-process ``asyncio`` server that multiplexes thousands of
concurrent producer/consumer connections onto a live KerA cluster.
Clients speak the same length-prefixed frame protocol as the socket
transport (:mod:`repro.wire.netframe`) with gateway-specific frame kinds
(:mod:`repro.gateway.protocol`): produce requests carry encoded chunk
frames verbatim, fetch responses stream zero-copy chunk-frame views
straight out of the broker's fan-out cache.

* :class:`~repro.gateway.server.GatewayServer` — the front door: one
  event loop on a dedicated thread, per-connection request pipelining
  (each request is its own task; responses correlate by request id, not
  order), ``StreamWriter`` write coalescing, and blocking cluster calls
  bridged off the loop;
* :class:`~repro.gateway.client.AsyncGatewayClient` — the wire client:
  request-id multiplexing over one connection, any number of requests in
  flight;
* :class:`~repro.gateway.client.AsyncProducer` /
  :class:`~repro.gateway.client.AsyncConsumer` — the high-level pair
  mirroring :class:`~repro.kera.client.KeraProducer` /
  :class:`~repro.kera.client.KeraConsumer` over the gateway wire.
"""

from repro.gateway.protocol import GatewayError
from repro.gateway.server import GatewayServer
from repro.gateway.client import AsyncGatewayClient, AsyncProducer, AsyncConsumer

__all__ = [
    "GatewayError",
    "GatewayServer",
    "AsyncGatewayClient",
    "AsyncProducer",
    "AsyncConsumer",
]
