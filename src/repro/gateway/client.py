"""Asyncio gateway clients: the wire client plus producer/consumer pair.

:class:`AsyncGatewayClient` owns one connection and multiplexes any
number of in-flight requests over it by request id — callers ``await``
their own response while others pipeline behind the same writer. On top
of it, :class:`AsyncProducer` and :class:`AsyncConsumer` mirror the
in-process :class:`~repro.kera.client.KeraProducer` /
:class:`~repro.kera.client.KeraConsumer` workflow: records append into
per-streamlet chunk builders client-side (the gateway only ever sees
sealed, CRC-stamped chunk frames), and fetch cursors advance per
(streamlet, active-entry) exactly like the native consumer.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.common.checksum import crc32c
from repro.common.errors import ConfigError, RpcError
from repro.wire.chunk import Chunk, ChunkBuilder, CHUNK_HEADER_SIZE
from repro.wire.netframe import (
    DEFAULT_MAX_FRAME_BYTES,
    read_frame_async,
    write_frame_async,
)
from repro.wire.pool import BufferPool
from repro.wire.record import Record
from repro.gateway import protocol
from repro.gateway.protocol import GatewayError
from repro.kera.messages import ChunkAssignment, FetchPosition


class AsyncGatewayClient:
    """One gateway connection, many in-flight requests."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future[tuple[int, bytes]]] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._read_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "AsyncGatewayClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    async def close(self) -> None:
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - peer gone
            pass
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._fail_pending(RpcError("gateway client closed"))

    async def __aenter__(self) -> "AsyncGatewayClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- request multiplexing ------------------------------------------------

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _read_loop(self) -> None:
        try:
            while True:
                record = await read_frame_async(
                    self._reader, max_frame_bytes=self._max_frame_bytes
                )
                if record is None:
                    self._fail_pending(RpcError("gateway closed the connection"))
                    return
                kind, payload = record
                request_id = protocol.peek_request_id(payload)
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue  # response for an abandoned request
                if kind == protocol.GW_ERROR:
                    _, error = protocol.decode_error(payload)
                    future.set_exception(error)
                else:
                    future.set_result((kind, payload))
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - fanned out to every waiter
            self._fail_pending(
                RpcError(f"gateway connection broke: {exc!r}")
            )

    async def _request(
        self, kind: int, parts: list, expect: int
    ) -> bytes:
        if self._closed:
            raise RpcError("gateway client closed")
        loop = asyncio.get_running_loop()
        request_id = protocol.peek_request_id(parts[0])
        future: asyncio.Future[tuple[int, bytes]] = loop.create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                write_frame_async(self._writer, kind, parts)
                await self._writer.drain()
            got_kind, payload = await future
        except BaseException:
            self._pending.pop(request_id, None)
            raise
        if got_kind != expect:
            raise GatewayError(
                f"unexpected response kind {got_kind} (expected {expect})"
            )
        return payload

    # -- RPC surface ---------------------------------------------------------

    async def create_stream(self, stream_id: int, num_streamlets: int) -> None:
        request_id = next(self._ids)
        await self._request(
            protocol.GW_CREATE_STREAM,
            protocol.encode_create_stream(request_id, stream_id, num_streamlets),
            protocol.GW_OK,
        )

    async def meta(self, stream_id: int) -> tuple[int, int, list[int]]:
        """``(q_active_groups, chunk_size, streamlet_ids)`` for a stream."""
        request_id = next(self._ids)
        payload = await self._request(
            protocol.GW_META,
            protocol.encode_meta(request_id, stream_id),
            protocol.GW_META_OK,
        )
        _, q_active, chunk_size, streamlets = protocol.decode_meta_ok(payload)
        return q_active, chunk_size, streamlets

    async def produce(
        self, chunks: list[Chunk], *, producer_id: int
    ) -> list[ChunkAssignment]:
        """Ship sealed chunks; returns their acknowledged assignments."""
        frames = []
        for chunk in chunks:
            if chunk.wire is None:
                raise ConfigError("produce requires builder-sealed chunks (.wire)")
            frames.append(chunk.wire)
        request_id = next(self._ids)
        payload = await self._request(
            protocol.GW_PRODUCE,
            protocol.encode_produce(request_id, producer_id, frames),
            protocol.GW_PRODUCE_OK,
        )
        _, assignments = protocol.decode_produce_ok(payload)
        return assignments

    async def fetch(
        self,
        positions: list[FetchPosition],
        *,
        consumer_id: int,
        max_chunks_per_entry: int = 16,
    ) -> list[tuple[FetchPosition, FetchPosition, list[Chunk]]]:
        """One fetch round; ``(position, next_position, chunks)`` per entry."""
        request_id = next(self._ids)
        payload = await self._request(
            protocol.GW_FETCH,
            protocol.encode_fetch(
                request_id, consumer_id, positions, max_chunks_per_entry
            ),
            protocol.GW_FETCH_OK,
        )
        _, entries = protocol.decode_fetch_ok(payload)
        return entries


class AsyncProducer:
    """Client-side chunk building + gateway produce, KeraProducer-shaped.

    Records encode straight into pooled chunk-frame scratch buffers;
    :meth:`flush` seals every partial chunk and ships the frames in one
    pipelined produce request.
    """

    def __init__(
        self,
        client: AsyncGatewayClient,
        producer_id: int,
        *,
        stream_id: int,
        chunk_size: int,
        streamlet_ids: list[int],
    ) -> None:
        self.client = client
        self.producer_id = producer_id
        self.stream_id = stream_id
        self.chunk_size = chunk_size
        self.streamlet_ids = list(streamlet_ids)
        self._pool = BufferPool(CHUNK_HEADER_SIZE + chunk_size)
        self._builders: dict[int, ChunkBuilder] = {}
        self._seqs: dict[int, itertools.count] = {}
        self._ready: list[Chunk] = []
        self._rr_cursor = 0
        self.records_sent = 0
        self.chunks_sent = 0
        self.duplicates_reported = 0

    @classmethod
    async def open(
        cls, client: AsyncGatewayClient, producer_id: int, *, stream_id: int
    ) -> "AsyncProducer":
        """Fetch stream metadata and build a wired-up producer."""
        _, chunk_size, streamlets = await client.meta(stream_id)
        return cls(
            client,
            producer_id,
            stream_id=stream_id,
            chunk_size=chunk_size,
            streamlet_ids=streamlets,
        )

    def _pick_streamlet(self, record: Record) -> int:
        if record.keys:
            return self.streamlet_ids[
                crc32c(record.keys[0]) % len(self.streamlet_ids)
            ]
        streamlet = self.streamlet_ids[self._rr_cursor % len(self.streamlet_ids)]
        self._rr_cursor += 1
        return streamlet

    def _builder(self, streamlet_id: int) -> ChunkBuilder:
        builder = self._builders.get(streamlet_id)
        if builder is None:
            builder = ChunkBuilder(
                self.chunk_size,
                stream_id=self.stream_id,
                streamlet_id=streamlet_id,
                producer_id=self.producer_id,
                pool=self._pool,
            )
            self._builders[streamlet_id] = builder
            self._seqs[streamlet_id] = itertools.count()
        return builder

    def send(
        self,
        value: bytes,
        *,
        keys: tuple[bytes, ...] = (),
        streamlet_id: int | None = None,
    ) -> None:
        """Append one record; full chunks are staged for the next flush."""
        record = Record(value=value, keys=keys)
        if streamlet_id is None:
            streamlet_id = self._pick_streamlet(record)
        builder = self._builder(streamlet_id)
        if not builder.try_append(record):
            self._seal(streamlet_id)
            if not builder.try_append(record):
                raise ConfigError(
                    f"record of {record.encoded_size()} bytes exceeds chunk "
                    f"size {self.chunk_size}"
                )

    def _seal(self, streamlet_id: int) -> None:
        builder = self._builders[streamlet_id]
        if builder.is_empty:
            return
        self._ready.append(builder.build(chunk_seq=next(self._seqs[streamlet_id])))

    async def flush(self) -> list[ChunkAssignment]:
        """Seal partial chunks and produce everything staged.

        Exception-safe like the native producer: a failed produce puts
        the chunks back so a retry re-sends them (the broker's
        exactly-once sequence check absorbs partial first attempts).
        """
        for streamlet_id in list(self._builders):
            self._seal(streamlet_id)
        if not self._ready:
            return []
        chunks, self._ready = self._ready, []
        try:
            assignments = await self.client.produce(
                chunks, producer_id=self.producer_id
            )
        except BaseException:
            self._ready = chunks + self._ready
            raise
        for chunk in chunks:
            self.records_sent += chunk.record_count
            self.chunks_sent += 1
        self.duplicates_reported += sum(1 for a in assignments if a.duplicate)
        return assignments

    async def close(self, *, flush: bool = True) -> None:
        try:
            if flush:
                await self.flush()
        finally:
            for builder in self._builders.values():
                builder.close()
            self._builders.clear()


class AsyncConsumer:
    """Cursor-per-(streamlet, entry) pulls over the gateway."""

    def __init__(
        self,
        client: AsyncGatewayClient,
        consumer_id: int,
        *,
        stream_id: int,
        q_active_groups: int,
        streamlet_ids: list[int],
    ) -> None:
        self.client = client
        self.consumer_id = consumer_id
        self.stream_id = stream_id
        self._positions: dict[tuple[int, int], FetchPosition] = {}
        for streamlet_id in streamlet_ids:
            for entry in range(q_active_groups):
                self._positions[(streamlet_id, entry)] = FetchPosition(
                    stream_id=stream_id, streamlet_id=streamlet_id, entry=entry
                )
        self.records_read = 0
        self.chunks_read = 0

    @classmethod
    async def open(
        cls, client: AsyncGatewayClient, consumer_id: int, *, stream_id: int
    ) -> "AsyncConsumer":
        q_active, _, streamlets = await client.meta(stream_id)
        return cls(
            client,
            consumer_id,
            stream_id=stream_id,
            q_active_groups=q_active,
            streamlet_ids=streamlets,
        )

    async def poll_chunks(self, max_chunks_per_entry: int = 16) -> list[Chunk]:
        """One fetch round over every cursor; advances them."""
        entries = await self.client.fetch(
            list(self._positions.values()),
            consumer_id=self.consumer_id,
            max_chunks_per_entry=max_chunks_per_entry,
        )
        out: list[Chunk] = []
        for position, next_position, chunks in entries:
            self._positions[(position.streamlet_id, position.entry)] = next_position
            out.extend(chunks)
            self.chunks_read += len(chunks)
            self.records_read += sum(c.record_count for c in chunks)
        return out

    async def poll(self, max_chunks_per_entry: int = 16) -> list[Record]:
        records: list[Record] = []
        for chunk in await self.poll_chunks(max_chunks_per_entry):
            records.extend(chunk.records())
        return records

    async def drain(self, *, max_rounds: int = 1000) -> list[Record]:
        """Poll until a round returns nothing."""
        records: list[Record] = []
        for _ in range(max_rounds):
            batch = await self.poll()
            if not batch:
                return records
            records.extend(batch)
        return records
