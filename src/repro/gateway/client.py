"""Asyncio gateway clients: the wire client plus producer/consumer pair.

:class:`AsyncGatewayClient` owns one connection and multiplexes any
number of in-flight requests over it by request id — callers ``await``
their own response while others pipeline behind the same writer. On top
of it, :class:`AsyncProducer` and :class:`AsyncConsumer` mirror the
in-process :class:`~repro.kera.client.KeraProducer` /
:class:`~repro.kera.client.KeraConsumer` workflow: records append into
per-streamlet chunk builders client-side (the gateway only ever sees
sealed, CRC-stamped chunk frames), and fetch cursors advance per
(streamlet, active-entry) exactly like the native consumer.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.common.checksum import crc32c, crc32c_concat
from repro.common.errors import (
    ConfigError,
    NotLeaderError,
    RetriableRpcError,
    RpcError,
    WireFormatError,
)
from repro.wire.chunk import Chunk, ChunkBuilder, CHUNK_HEADER_SIZE
from repro.wire.netframe import (
    DEFAULT_MAX_FRAME_BYTES,
    read_frame_async,
    write_frame_async,
)
from repro.wire.pool import BufferPool
from repro.wire.record import (
    RECORD_FIXED_HEADER,
    Record,
    encode_keyless_value,
    encode_keyless_values_with_crcs,
    encode_record,
)
from repro.gateway import protocol
from repro.gateway.protocol import GatewayError
from repro.kera.messages import ChunkAssignment, FetchPosition


class AsyncGatewayClient:
    """One gateway connection, many in-flight requests."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future[tuple[int, bytes]]] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._read_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "AsyncGatewayClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    async def close(self) -> None:
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - peer gone
            pass
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._fail_pending(RpcError("gateway client closed"))

    async def __aenter__(self) -> "AsyncGatewayClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- request multiplexing ------------------------------------------------

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _read_loop(self) -> None:
        try:
            while True:
                record = await read_frame_async(
                    self._reader, max_frame_bytes=self._max_frame_bytes
                )
                if record is None:
                    self._fail_pending(RpcError("gateway closed the connection"))
                    return
                kind, payload = record
                request_id = protocol.peek_request_id(payload)
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue  # response for an abandoned request
                if kind == protocol.GW_ERROR:
                    _, error = protocol.decode_error(payload)
                    future.set_exception(error)
                else:
                    future.set_result((kind, payload))
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - fanned out to every waiter
            self._fail_pending(
                RpcError(f"gateway connection broke: {exc!r}")
            )

    async def _request(
        self, kind: int, parts: list, expect: int
    ) -> bytes:
        if self._closed:
            raise RpcError("gateway client closed")
        loop = asyncio.get_running_loop()
        request_id = protocol.peek_request_id(parts[0])
        future: asyncio.Future[tuple[int, bytes]] = loop.create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                write_frame_async(self._writer, kind, parts)
                await self._writer.drain()
            got_kind, payload = await future
        except BaseException:
            self._pending.pop(request_id, None)
            raise
        if got_kind != expect:
            raise GatewayError(
                f"unexpected response kind {got_kind} (expected {expect})"
            )
        return payload

    # -- RPC surface ---------------------------------------------------------

    async def create_stream(self, stream_id: int, num_streamlets: int) -> None:
        request_id = next(self._ids)
        await self._request(
            protocol.GW_CREATE_STREAM,
            protocol.encode_create_stream(request_id, stream_id, num_streamlets),
            protocol.GW_OK,
        )

    async def meta(self, stream_id: int) -> tuple[int, int, list[int]]:
        """``(q_active_groups, chunk_size, streamlet_ids)`` for a stream."""
        request_id = next(self._ids)
        payload = await self._request(
            protocol.GW_META,
            protocol.encode_meta(request_id, stream_id),
            protocol.GW_META_OK,
        )
        _, q_active, chunk_size, streamlets = protocol.decode_meta_ok(payload)
        return q_active, chunk_size, streamlets

    async def produce(
        self, chunks: list[Chunk], *, producer_id: int
    ) -> list[ChunkAssignment]:
        """Ship sealed chunks; returns their acknowledged assignments."""
        frames = []
        for chunk in chunks:
            if chunk.wire is None:
                raise ConfigError("produce requires builder-sealed chunks (.wire)")
            frames.append(chunk.wire)
        request_id = next(self._ids)
        payload = await self._request(
            protocol.GW_PRODUCE,
            protocol.encode_produce(request_id, producer_id, frames),
            protocol.GW_PRODUCE_OK,
        )
        _, assignments = protocol.decode_produce_ok(payload)
        return assignments

    async def fetch(
        self,
        positions: list[FetchPosition],
        *,
        consumer_id: int,
        max_chunks_per_entry: int = 16,
    ) -> list[tuple[FetchPosition, FetchPosition, list[Chunk]]]:
        """One fetch round; ``(position, next_position, chunks)`` per entry."""
        request_id = next(self._ids)
        payload = await self._request(
            protocol.GW_FETCH,
            protocol.encode_fetch(
                request_id, consumer_id, positions, max_chunks_per_entry
            ),
            protocol.GW_FETCH_OK,
        )
        _, entries = protocol.decode_fetch_ok(payload)
        return entries


class AsyncProducer:
    """Client-side chunk building + gateway produce, KeraProducer-shaped.

    Records stage per streamlet and batch-encode into pooled chunk-frame
    scratch buffers when a chunk seals (uniform keyless batches — the
    benchmark workload — go through the lane-parallel CRC engine in one
    pass instead of one scalar checksum per record); :meth:`flush` seals
    every partial chunk and ships the frames.

    With ``max_inflight > 1`` the producer *pipelines*: every chunk
    sealed full by :meth:`send` ships immediately on its own task, up to
    ``max_inflight`` produce frames awaiting acks concurrently, and
    ``linger_ms`` bounds how long a partial chunk may sit before being
    sealed and shipped anyway. Frame order is preserved (task creation
    order plus FIFO semaphore/lock queues), so per-streamlet
    ``chunk_seq`` arrives in order at the gateway. :meth:`flush` then
    just drains the window. Note the retry caveat: if one pipelined
    frame fails while a later one succeeds, re-flushing re-sends the
    failed chunks and the broker's sequence check reports them as
    duplicates of nothing — callers that need exact retry semantics
    should keep ``max_inflight=1``.

    With ``retries > 0``, :meth:`flush` absorbs *typed* transient
    failures — ``NotLeaderError`` (a broker fenced mid-failover) and
    ``RetriableRpcError`` — by re-flushing the re-staged chunks after a
    bounded exponential backoff, up to ``retries`` attempts. Re-sent
    chunks keep their ``chunk_seq``, so the broker's exactly-once
    sequence check deduplicates anything the first attempt actually
    landed; before each retry the staged queue is re-sorted into
    per-streamlet sequence order, so chunks from several failed
    pipelined frames replay in the order the broker expects.
    """

    #: Flush failures that are safe (and useful) to retry.
    RETRYABLE = (NotLeaderError, RetriableRpcError)

    def __init__(
        self,
        client: AsyncGatewayClient,
        producer_id: int,
        *,
        stream_id: int,
        chunk_size: int,
        streamlet_ids: list[int],
        max_inflight: int = 1,
        linger_ms: float = 0.0,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
    ) -> None:
        self.client = client
        self.producer_id = producer_id
        self.stream_id = stream_id
        self.chunk_size = chunk_size
        self.streamlet_ids = list(streamlet_ids)
        self.max_inflight = max_inflight
        self.linger_ms = linger_ms
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.retries_used = 0
        self._pool = BufferPool(CHUNK_HEADER_SIZE + chunk_size)
        self._builders: dict[int, ChunkBuilder] = {}
        # Staged-but-unencoded records per streamlet (raw value bytes for
        # keyless sends, Record objects otherwise), and their exact
        # encoded byte count. A batch staged by send_many may exceed one
        # chunk's capacity; the drain spills across chunks as it encodes.
        self._pending: dict[int, list[Record | bytes]] = {}
        self._pending_bytes: dict[int, int] = {}
        self._seqs: dict[int, itertools.count] = {}
        self._ready: list[Chunk] = []
        self._sem = asyncio.Semaphore(max_inflight) if max_inflight > 1 else None
        self._ship_tasks: list[asyncio.Task[list[ChunkAssignment]]] = []
        self._ship_scheduled = False
        self._linger_handle: asyncio.TimerHandle | None = None
        self._rr_cursor = 0
        self.records_sent = 0
        self.chunks_sent = 0
        self.duplicates_reported = 0

    @classmethod
    async def open(
        cls,
        client: AsyncGatewayClient,
        producer_id: int,
        *,
        stream_id: int,
        max_inflight: int = 1,
        linger_ms: float = 0.0,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
    ) -> "AsyncProducer":
        """Fetch stream metadata and build a wired-up producer."""
        _, chunk_size, streamlets = await client.meta(stream_id)
        return cls(
            client,
            producer_id,
            stream_id=stream_id,
            chunk_size=chunk_size,
            streamlet_ids=streamlets,
            max_inflight=max_inflight,
            linger_ms=linger_ms,
            retries=retries,
            retry_backoff_s=retry_backoff_s,
        )

    def _pick_streamlet(self, record: Record) -> int:
        if record.keys:
            return self.streamlet_ids[
                crc32c(record.keys[0]) % len(self.streamlet_ids)
            ]
        # Sticky partitioning: non-keyed records stay on one streamlet
        # until its chunk seals (the cursor advances in _seal), so chunks
        # fill to capacity instead of fragmenting a flush across every
        # streamlet — full chunks batch-encode through the lane CRC
        # engine and cost one chunk checksum per ~capacity bytes, not one
        # per handful of records. Seal-time advancement keeps long-run
        # balance: every streamlet gets the same bytes per cycle.
        return self.streamlet_ids[self._rr_cursor % len(self.streamlet_ids)]

    def _builder(self, streamlet_id: int) -> ChunkBuilder:
        builder = self._builders.get(streamlet_id)
        if builder is None:
            builder = ChunkBuilder(
                self.chunk_size,
                stream_id=self.stream_id,
                streamlet_id=streamlet_id,
                producer_id=self.producer_id,
                pool=self._pool,
            )
            self._builders[streamlet_id] = builder
            self._pending[streamlet_id] = []
            self._pending_bytes[streamlet_id] = 0
            self._seqs[streamlet_id] = itertools.count()
        return builder

    def send(
        self,
        value: bytes,
        *,
        keys: tuple[bytes, ...] = (),
        streamlet_id: int | None = None,
    ) -> None:
        """Append one record; full chunks are staged for the next flush."""
        if keys:
            record: Record | bytes = Record(value=value, keys=keys)
            size = record.encoded_size()
            if streamlet_id is None:
                streamlet_id = self._pick_streamlet(record)
        else:
            # Benchmark-workload fast path: no Record object per send —
            # raw values stage directly and batch-encode at seal time.
            record = value
            size = RECORD_FIXED_HEADER + len(value)
            if streamlet_id is None:
                streamlet_id = self.streamlet_ids[
                    self._rr_cursor % len(self.streamlet_ids)
                ]
        builder = self._builder(streamlet_id)
        if size > self.chunk_size:
            # Same contract (and message) as ChunkBuilder.try_append: a
            # record no chunk could ever hold is a hard error.
            raise WireFormatError(
                f"record of {size} bytes exceeds chunk capacity {self.chunk_size}"
            )
        if self._pending_bytes[streamlet_id] + size > builder.remaining():
            self._seal(streamlet_id)
        self._pending[streamlet_id].append(record)
        self._pending_bytes[streamlet_id] += size
        if self._sem is not None:
            self._maybe_ship()
            if (
                self.linger_ms > 0
                and self._linger_handle is None
                and (
                    any(self._pending_bytes.values())
                    or any(not b.is_empty for b in self._builders.values())
                )
            ):
                self._linger_handle = asyncio.get_running_loop().call_later(
                    self.linger_ms / 1000.0, self._linger_fire
                )

    def send_many(self, values: list[bytes]) -> None:
        """Append many keyless records in one call.

        Equivalent to ``for v in values: self.send(v)`` — same sticky
        partitioning, same seal/rotate behavior — but the per-record
        bookkeeping (dict probes, linger checks, ship scheduling)
        amortizes across the batch: values stage in capacity-sized
        slices with one list extend per slice.
        """
        if not values:
            return
        header = RECORD_FIXED_HEADER
        total = 0
        for value in values:
            size = header + len(value)
            if size > self.chunk_size:
                raise WireFormatError(
                    f"record of {size} bytes exceeds chunk capacity "
                    f"{self.chunk_size}"
                )
            total += size
        streamlet_id = self.streamlet_ids[
            self._rr_cursor % len(self.streamlet_ids)
        ]
        self._builder(streamlet_id)
        # The whole batch stages on one streamlet even past chunk
        # capacity — the drain spills across as many chunks as needed,
        # all from a single batch encode. Unlike send(), nothing seals
        # mid-batch; the flush/linger that follows pays one engine pass
        # for every chunk this batch produced.
        self._pending[streamlet_id].extend(values)
        self._pending_bytes[streamlet_id] += total
        if self._sem is not None:
            self._maybe_ship()
            if (
                self.linger_ms > 0
                and self._linger_handle is None
                and (
                    any(self._pending_bytes.values())
                    or any(not b.is_empty for b in self._builders.values())
                )
            ):
                self._linger_handle = asyncio.get_running_loop().call_later(
                    self.linger_ms / 1000.0, self._linger_fire
                )

    def _drain_pending(self, streamlet_id: int) -> None:
        """Batch-encode staged records into the streamlet's builder.

        A staged batch may exceed one chunk's capacity (see
        :meth:`send_many`): uniform keyless batches encode in a *single*
        engine pass and the blob splits into capacity-sized appends,
        building each chunk that fills mid-drain; anything else appends
        record by record with the same spill behavior.
        """
        records = self._pending.get(streamlet_id)
        if not records:
            return
        builder = self._builders[streamlet_id]
        value_len = len(records[0]) if type(records[0]) is bytes else -1
        if value_len >= 0 and all(
            type(r) is bytes and len(r) == value_len for r in records
        ):
            # One engine pass encodes the whole batch; the record CRCs it
            # computes compose each chunk's payload checksum, so sealing
            # never re-reads the payload bytes.
            encoded, rec_crcs = encode_keyless_values_with_crcs(records)
            rec_size = RECORD_FIXED_HEADER + value_len
            done, n = 0, len(records)
            while done < n:
                take = min(n - done, builder.remaining() // rec_size)
                if take:
                    slice_crc = (
                        crc32c_concat(rec_crcs[done : done + take], rec_size)
                        if rec_crcs is not None
                        else None
                    )
                    if not builder.try_append_encoded(
                        encoded[done * rec_size : (done + take) * rec_size],
                        take,
                        payload_crc=slice_crc,
                    ):
                        raise AssertionError(
                            "capacity-sized slice did not fit (drain invariant)"
                        )
                    done += take
                if done < n:
                    self._build_chunk(streamlet_id)
        else:
            for r in records:
                one = (
                    encode_keyless_value(r)
                    if type(r) is bytes
                    else encode_record(r)
                )
                if not builder.try_append_encoded(one, 1):
                    self._build_chunk(streamlet_id)
                    if not builder.try_append_encoded(one, 1):
                        raise AssertionError(
                            "record exceeds empty chunk (send() size check)"
                        )
        records.clear()
        self._pending_bytes[streamlet_id] = 0

    def _build_chunk(self, streamlet_id: int) -> None:
        """Seal the streamlet's current chunk into the ready queue."""
        builder = self._builders[streamlet_id]
        self._ready.append(builder.build(chunk_seq=next(self._seqs[streamlet_id])))
        # Rotate the sticky cursor off a streamlet whose chunk just
        # sealed, whether it filled naturally or a flush cut it short.
        if self.streamlet_ids[self._rr_cursor % len(self.streamlet_ids)] == streamlet_id:
            self._rr_cursor += 1

    def _seal(self, streamlet_id: int) -> None:
        self._drain_pending(streamlet_id)
        if not self._builders[streamlet_id].is_empty:
            self._build_chunk(streamlet_id)

    # -- pipelined shipping (max_inflight > 1) --------------------------------

    def _maybe_ship(self) -> None:
        """Schedule staged chunks to ship on the next loop tick.

        The one-tick deferral batches chunks that seal back to back —
        e.g. a capacity-sealed chunk followed immediately by a flush's
        partial — into a single produce frame instead of one frame per
        chunk; :meth:`flush` ships inline so nothing waits on the tick.
        """
        if self._sem is None or not self._ready or self._ship_scheduled:
            return
        self._ship_scheduled = True
        asyncio.get_running_loop().call_soon(self._ship_now)

    def _ship_now(self) -> None:
        self._ship_scheduled = False
        if not self._ready:
            return
        chunks, self._ready = self._ready, []
        self._ship_tasks.append(
            asyncio.get_running_loop().create_task(self._ship(chunks))
        )

    def _linger_fire(self) -> None:
        self._linger_handle = None
        for streamlet_id in list(self._builders):
            self._seal(streamlet_id)
        self._ship_now()

    async def _ship(self, chunks: list[Chunk]) -> list[ChunkAssignment]:
        assert self._sem is not None
        async with self._sem:
            try:
                assignments = await self.client.produce(
                    chunks, producer_id=self.producer_id
                )
            except BaseException:
                # Re-stage for a retry flush, ahead of anything newer.
                self._ready = chunks + self._ready
                raise
        for chunk in chunks:
            self.records_sent += chunk.record_count
            self.chunks_sent += 1
        self.duplicates_reported += sum(1 for a in assignments if a.duplicate)
        return assignments

    async def flush(self) -> list[ChunkAssignment]:
        """Seal partial chunks and produce everything staged.

        Exception-safe like the native producer: a failed produce puts
        the chunks back so a retry re-sends them (the broker's
        exactly-once sequence check absorbs partial first attempts).
        Pipelined mode additionally drains the in-flight window and
        raises the first ship failure, if any. With ``retries > 0``,
        typed transient failures (:attr:`RETRYABLE`) re-flush after a
        bounded backoff instead of surfacing.
        """
        attempts_left = self.retries
        backoff = self.retry_backoff_s
        while True:
            try:
                return await self._flush_once()
            except self.RETRYABLE:
                if attempts_left <= 0:
                    raise
                attempts_left -= 1
                self.retries_used += 1
                # Re-staged chunks from several failed pipelined frames
                # may have prepended out of order; the broker needs each
                # streamlet's chunk_seq back in sequence.
                self._ready.sort(key=lambda c: (c.streamlet_id, c.chunk_seq))
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2.0, 1.0)

    async def _flush_once(self) -> list[ChunkAssignment]:
        if self._linger_handle is not None:
            self._linger_handle.cancel()
            self._linger_handle = None
        for streamlet_id in list(self._builders):
            self._seal(streamlet_id)
        if self._sem is not None:
            self._ship_now()
            tasks, self._ship_tasks = self._ship_tasks, []
            assignments: list[ChunkAssignment] = []
            first_error: BaseException | None = None
            if tasks:
                for result in await asyncio.gather(*tasks, return_exceptions=True):
                    if isinstance(result, BaseException):
                        if first_error is None:
                            first_error = result
                    else:
                        assignments.extend(result)
            if first_error is not None:
                raise first_error
            return assignments
        if not self._ready:
            return []
        chunks, self._ready = self._ready, []
        try:
            assignments = await self.client.produce(
                chunks, producer_id=self.producer_id
            )
        except BaseException:
            self._ready = chunks + self._ready
            raise
        for chunk in chunks:
            self.records_sent += chunk.record_count
            self.chunks_sent += 1
        self.duplicates_reported += sum(1 for a in assignments if a.duplicate)
        return assignments

    async def close(self, *, flush: bool = True) -> None:
        try:
            if flush:
                await self.flush()
        finally:
            for builder in self._builders.values():
                builder.close()
            self._builders.clear()


class AsyncConsumer:
    """Cursor-per-(streamlet, entry) pulls over the gateway."""

    def __init__(
        self,
        client: AsyncGatewayClient,
        consumer_id: int,
        *,
        stream_id: int,
        q_active_groups: int,
        streamlet_ids: list[int],
    ) -> None:
        self.client = client
        self.consumer_id = consumer_id
        self.stream_id = stream_id
        self._positions: dict[tuple[int, int], FetchPosition] = {}
        for streamlet_id in streamlet_ids:
            for entry in range(q_active_groups):
                self._positions[(streamlet_id, entry)] = FetchPosition(
                    stream_id=stream_id, streamlet_id=streamlet_id, entry=entry
                )
        self.records_read = 0
        self.chunks_read = 0

    @classmethod
    async def open(
        cls, client: AsyncGatewayClient, consumer_id: int, *, stream_id: int
    ) -> "AsyncConsumer":
        q_active, _, streamlets = await client.meta(stream_id)
        return cls(
            client,
            consumer_id,
            stream_id=stream_id,
            q_active_groups=q_active,
            streamlet_ids=streamlets,
        )

    async def poll_chunks(self, max_chunks_per_entry: int = 16) -> list[Chunk]:
        """One fetch round over every cursor; advances them."""
        entries = await self.client.fetch(
            list(self._positions.values()),
            consumer_id=self.consumer_id,
            max_chunks_per_entry=max_chunks_per_entry,
        )
        out: list[Chunk] = []
        for position, next_position, chunks in entries:
            self._positions[(position.streamlet_id, position.entry)] = next_position
            out.extend(chunks)
            self.chunks_read += len(chunks)
            self.records_read += sum(c.record_count for c in chunks)
        return out

    async def poll(self, max_chunks_per_entry: int = 16) -> list[Record]:
        records: list[Record] = []
        for chunk in await self.poll_chunks(max_chunks_per_entry):
            records.extend(chunk.records())
        return records

    async def drain(self, *, max_rounds: int = 1000) -> list[Record]:
        """Poll until a round returns nothing."""
        records: list[Record] = []
        for _ in range(max_rounds):
            batch = await self.poll()
            if not batch:
                return records
            records.extend(batch)
        return records
