"""The asyncio front door: many client connections, one cluster.

One event loop on a dedicated thread serves every connection. Produce is
**completion-driven**: the loop decodes and enrolls the request with the
:class:`_ProduceCoalescer`, which merges small chunks from many
connections heading to the same broker into one ``ProduceRequest``,
submits it via :meth:`LiveKeraCluster.submit_produce`, and resolves each
covered request's future back on the loop (``call_soon_threadsafe``) when
the broker's completion callback fires — thousands of produces can be in
flight with **zero parked threads**. Only genuinely blocking cluster
calls (fetch, create-stream) still round-trip through the executor pool.
Concurrency shape per connection:

* the **reader coroutine** pulls frames and spawns one task per request —
  per-connection pipelining: a slow produce does not block the fetch
  behind it, responses correlate by request id, not arrival order;
* the **write side** coalesces: each response's parts land in the
  ``StreamWriter`` buffer under a per-connection lock (frames stay
  contiguous) and drain lets the transport pack many small responses per
  syscall.

Fetch responses are served through the cluster's zero-copy view path
(``serve_views=True``): the chunk-frame memoryviews coming out of the
shared fan-out cache are handed to the stream writer verbatim — many
consumer connections polling the same hot chunks hit one cached,
CRC-validated frame, and the gateway never materializes payload bytes.

Failure containment: a request that raises server-side returns a
``GW_ERROR`` frame carrying the message; a connection that sends garbage
(bad magic, oversized length) is dropped — a byte stream cannot resync —
without touching any other connection.
"""

from __future__ import annotations

import asyncio
import struct
import threading
import time
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.common.checksum import crc32c_many
from repro.common.errors import ChecksumError, RpcError
from repro.replication.flow import AdaptiveBatcher
from repro.wire.netframe import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameProtocolError,
    read_frame_async,
    write_frame_async,
)
from repro.gateway import protocol
from repro.kera.live import LiveKeraCluster
from repro.kera.messages import ProduceResponse
from repro.wire.chunk import Chunk

#: Monotonic counters a gateway maintains; reads aggregate across shards.
_STAT_FIELDS = (
    "connections_accepted",
    "connections_open",
    "requests_served",
    "produce_requests",
    "fetch_requests",
    "errors_returned",
    "chunks_in",
    "chunks_out",
    "produce_batches",
    "produce_batched_chunks",
)


class _StatShard:
    """One thread's private counter set — bumped without any lock."""

    __slots__ = _STAT_FIELDS

    def __init__(self) -> None:
        for name in _STAT_FIELDS:
            setattr(self, name, 0)


class GatewayStats:
    """Sharded gateway counters.

    ``bump`` used to serialize every request from both the loop thread
    and all executor threads through one lock; it now writes a per-thread
    shard (``threading.local``) with no locking at all, and attribute
    reads aggregate across shards. Counters are monotonic per shard, so a
    read concurrent with writers is just slightly stale, never torn; a
    shard outlives its thread (the registry keeps a strong reference), so
    counts are never lost.

    The one genuinely shared datum — the ``inflight_produces`` gauge for
    the completion-driven produce path — goes up and down, so it keeps a
    dedicated lock; it is touched twice per produce, not per bump.
    """

    def __init__(self) -> None:
        self._shards_lock = threading.Lock()
        self._shards: list[_StatShard] = []  # guarded-by: _shards_lock
        self._local = threading.local()
        self._gauge_lock = threading.Lock()
        self._inflight = 0  # guarded-by: _gauge_lock
        self._inflight_peak = 0  # guarded-by: _gauge_lock

    def _shard(self) -> _StatShard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = _StatShard()
            with self._shards_lock:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    def bump(self, **deltas: int) -> None:
        shard = self._shard()
        for name, delta in deltas.items():
            setattr(shard, name, getattr(shard, name) + delta)

    def __getattr__(self, name: str) -> int:
        # Only fires for names not found normally — i.e. the aggregated
        # counter reads; real instance attributes never reach here.
        if name in _STAT_FIELDS:
            with self._shards_lock:
                shards = list(self._shards)
            return sum(getattr(shard, name) for shard in shards)
        raise AttributeError(name)

    # -- inflight gauge -------------------------------------------------------

    def produce_begin(self) -> None:
        with self._gauge_lock:
            self._inflight += 1
            if self._inflight > self._inflight_peak:
                self._inflight_peak = self._inflight

    def produce_end(self) -> None:
        with self._gauge_lock:
            self._inflight -= 1

    @property
    def inflight_produces(self) -> int:
        """Gateway produce requests accepted but not yet resolved."""
        with self._gauge_lock:
            return self._inflight

    @property
    def inflight_produces_peak(self) -> int:
        """High-water mark of :attr:`inflight_produces`."""
        with self._gauge_lock:
            return self._inflight_peak


class _GatewayProduce:
    """One client produce request riding the coalesced async path."""

    __slots__ = ("request_id", "future", "assignments", "remaining", "error")

    def __init__(
        self, request_id: int, future: "asyncio.Future[list[Any]]", nchunks: int
    ) -> None:
        self.request_id = request_id
        self.future = future
        self.assignments: list[Any] = [None] * nchunks
        self.remaining = 0  # broker groups still outstanding
        self.error: BaseException | None = None


class _Lane:
    """Per-target-broker coalescing state."""

    __slots__ = ("slices", "pending_chunks", "busy", "batcher", "timer")

    def __init__(self, linger_s: float) -> None:
        # Each slice: (greq, producer_id, [(orig_index, chunk), ...]).
        self.slices: list[tuple[_GatewayProduce, int, list[tuple[int, Chunk]]]] = []
        self.pending_chunks = 0
        self.busy = False  # append token held by an in-flight merged request
        self.batcher = AdaptiveBatcher(linger_s=linger_s)
        self.timer: asyncio.TimerHandle | None = None


class _ProduceCoalescer:
    """Merges produce chunks from many connections per target broker.

    Enrollment happens synchronously on the loop thread (so a pipelining
    producer's requests enroll in frame order); each lane holds at most
    one merged :class:`ProduceRequest` *appending* at a time — the next
    merge is submitted only once the previous append returns (the
    ``on_append`` token), which preserves per-streamlet ``chunk_seq``
    order at the broker — while replication acks for earlier merges still
    overlap. Completion fans back out: every covered gateway request is
    acked (its future resolved on the loop) when its covering broker
    response lands.
    """

    def __init__(self, server: "GatewayServer", linger_s: float) -> None:
        self._server = server
        self._linger_s = linger_s
        self._lock = threading.Lock()
        self._lanes: dict[int, _Lane] = {}  # guarded-by: _lock

    # -- loop thread ----------------------------------------------------------

    def enroll(
        self, greq: _GatewayProduce, chunks: list[Chunk], producer_id: int
    ) -> None:
        cluster = self._server.cluster
        by_broker: dict[int, list[tuple[int, Chunk]]] = defaultdict(list)
        for index, chunk in enumerate(chunks):
            leader = cluster.leader_of(chunk.stream_id, chunk.streamlet_id)
            by_broker[leader].append((index, chunk))
        greq.remaining = len(by_broker)
        flush_now: list[int] = []
        with self._lock:
            for broker_id, items in by_broker.items():
                lane = self._lanes.get(broker_id)
                if lane is None:
                    lane = self._lanes[broker_id] = _Lane(self._linger_s)
                lane.slices.append((greq, producer_id, items))
                lane.pending_chunks += len(items)
                if lane.busy:
                    continue  # flushed again when the append token frees
                delay = lane.batcher.linger_delay(lane.pending_chunks, time.monotonic())
                if delay <= 0:
                    lane.busy = True
                    flush_now.append(broker_id)
                elif lane.timer is None:
                    loop = self._server._loop
                    assert loop is not None
                    lane.timer = loop.call_later(delay, self._timer_fire, broker_id)
        for broker_id in flush_now:
            self._server._executor.submit(self._flush, broker_id)

    def _timer_fire(self, broker_id: int) -> None:
        # Loop thread. Timers are never cancelled from other threads
        # (TimerHandle.cancel is not thread-safe); a stale fire just
        # no-ops against the lane state.
        with self._lock:
            lane = self._lanes.get(broker_id)
            if lane is None:
                return
            lane.timer = None
            if lane.busy or not lane.slices:
                return
            lane.busy = True
        self._server._executor.submit(self._flush, broker_id)

    # -- executor threads -----------------------------------------------------

    def _flush(self, broker_id: int) -> None:
        """Merge everything pending for one broker into one request and
        submit it completion-driven. Runs holding the lane's append
        token (``busy``)."""
        with self._lock:
            lane = self._lanes.get(broker_id)
            if lane is None:
                return
            slices = lane.slices
            lane.slices = []
            lane.pending_chunks = 0
            if not slices:
                lane.busy = False
                return
            lane.batcher.observe_ship(
                sum(len(items) for _, _, items in slices), time.monotonic()
            )
        slices = self._verify_slices(slices)
        if not slices:
            # Every pending slice failed verification; pass the append
            # token on (or chain into slices that arrived meanwhile).
            self._appended(broker_id)
            return
        merged: list[Chunk] = []
        covers: list[tuple[_GatewayProduce, int, list[int]]] = []
        for greq, _producer_id, items in slices:
            base = len(merged)
            merged.extend(chunk for _, chunk in items)
            covers.append((greq, base, [index for index, _ in items]))
        self._server.stats.bump(
            produce_batches=1, produce_batched_chunks=len(merged)
        )
        # The merged request carries the first slice's producer id; dedup
        # at the broker keys off each *chunk's* producer id, so merging
        # across producers is safe.
        self._server.cluster.submit_produce(
            broker_id,
            merged,
            slices[0][1],
            lambda response, error: self._completed(covers, response, error),
            on_append=lambda: self._appended(broker_id),
        )

    def _verify_slices(
        self,
        slices: list[tuple[_GatewayProduce, int, list[tuple[int, Chunk]]]],
    ) -> list[tuple[_GatewayProduce, int, list[tuple[int, Chunk]]]]:
        """Pay the trust boundary's deferred CRC re-validation, batched.

        Produce frames decode on the loop thread with ``verify=False`` so
        the loop never burns checksum time; the chunks arrive here still
        ``verified=False`` and one vectorized :func:`crc32c_many` pass
        over the whole merge window settles the debt. A slice with a
        corrupt chunk resolves its gateway request with
        :class:`ChecksumError` and drops out of the merge — the other
        connections' slices ship unaffected.
        """
        unverified = [
            chunk
            for _, _, items in slices
            for _, chunk in items
            if chunk.payload is not None and not chunk.verified
        ]
        if not unverified:
            return slices
        actuals = crc32c_many([chunk.payload for chunk in unverified])
        bad: dict[int, int] = {}
        for chunk, actual in zip(unverified, actuals):
            if actual == chunk.payload_crc:
                chunk.verified = True
            else:
                bad[id(chunk)] = actual
        if not bad:
            return slices
        good: list[tuple[_GatewayProduce, int, list[tuple[int, Chunk]]]] = []
        for entry in slices:
            greq, _producer_id, items = entry
            corrupt = next((c for _, c in items if id(c) in bad), None)
            if corrupt is None:
                good.append(entry)
                continue
            self._completed(
                [(greq, 0, [])],
                None,
                ChecksumError(
                    corrupt.payload_crc,
                    bad[id(corrupt)],
                    f"produce chunk (stream {corrupt.stream_id}, "
                    f"streamlet {corrupt.streamlet_id})",
                ),
            )
        return good

    # -- transport / shipper threads ------------------------------------------

    def _appended(self, broker_id: int) -> None:
        """The in-flight merge finished appending: pass the token on."""
        with self._lock:
            lane = self._lanes.get(broker_id)
            if lane is None:
                return
            if not lane.slices:
                lane.busy = False
                return
            # Keep the token: chain straight into the next merge — the
            # pipeline is warm, no linger.
        self._server._executor.submit(self._flush, broker_id)

    def _completed(
        self,
        covers: list[tuple[_GatewayProduce, int, list[int]]],
        response: ProduceResponse | None,
        error: BaseException | None,
    ) -> None:
        """Fan a broker response (or failure) out to covered requests."""
        resolved: list[_GatewayProduce] = []
        with self._lock:
            for greq, base, indices in covers:
                if error is not None or response is None:
                    if greq.error is None:
                        greq.error = error or RpcError("produce returned no response")
                else:
                    for offset, orig_index in enumerate(indices):
                        greq.assignments[orig_index] = response.assignments[
                            base + offset
                        ]
                greq.remaining -= 1
                if greq.remaining == 0:
                    resolved.append(greq)
        loop = self._server._loop
        for greq in resolved:
            try:
                assert loop is not None
                loop.call_soon_threadsafe(self._server._resolve_produce, greq)
            except RuntimeError:  # pragma: no cover - loop closed mid-shutdown
                pass


class GatewayServer:
    """Fronts a live cluster with an asyncio TCP endpoint."""

    def __init__(
        self,
        cluster: LiveKeraCluster,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        executor_workers: int = 16,
        produce_linger_ms: float = 0.0,
    ) -> None:
        self.cluster = cluster
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.stats = GatewayStats()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="gateway-call"
        )
        self._coalescer = _ProduceCoalescer(self, produce_linger_ms / 1000.0)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self._address: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind and serve on the loop thread; returns the bound address."""
        if self._thread is not None:
            raise RpcError("gateway already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="gateway-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(30.0):
            raise RpcError("gateway failed to start within 30s")
        if self._startup_error is not None:
            raise RpcError(f"gateway failed to bind: {self._startup_error}")
        assert self._address is not None
        return self._address

    def shutdown(self) -> None:
        loop = self._loop
        if loop is not None and self._stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already closing
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._executor.shutdown(wait=False)

    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RpcError("gateway not started")
        return self._address

    def __enter__(self) -> "GatewayServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port, reuse_address=True
            )
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()

    # -- per-connection ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.bump(connections_accepted=1, connections_open=1)
        loop = asyncio.get_running_loop()
        tasks: set[asyncio.Task[None]] = set()
        write_lock = asyncio.Lock()
        try:
            while True:
                record = await read_frame_async(
                    reader, max_frame_bytes=self.max_frame_bytes
                )
                if record is None:
                    break  # client closed cleanly
                kind, payload = record
                if kind == protocol.GW_PRODUCE:
                    # Hot path: no task per frame — enroll inline (frame
                    # receipt order IS append order) and answer from the
                    # future's done callback.
                    self._produce_fast(payload, writer)
                    continue
                # One task per request: pipelining. The payload is owned
                # bytes (readexactly), so tasks never alias a shared
                # receive buffer.
                task = loop.create_task(
                    self._serve_request(kind, payload, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (FrameProtocolError, ConnectionError, asyncio.IncompleteReadError):
            pass  # garbage or mid-frame drop: this connection only
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer gone
                pass
            except asyncio.CancelledError:
                # Loop teardown cancelled us mid-close; the transport is
                # already closing, so finish quietly instead of ending as
                # a cancelled task (streams' connection_made callback
                # re-raises a cancelled task's state as loop noise).
                pass
            self.stats.bump(connections_open=-1)

    async def _serve_request(
        self,
        kind: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            request_id = protocol.peek_request_id(payload)
        except struct.error:
            return  # not even a request id: nothing to address a reply to
        try:
            if kind == protocol.GW_PRODUCE:
                # Decode + enroll run synchronously here — no await
                # before them — so tasks created in frame-receipt order
                # enroll (and therefore append) in wire order, keeping a
                # pipelining producer's per-streamlet chunk_seq intact.
                # The await parks only this coroutine: no executor thread
                # is held across the replication ack wait.
                future = self._submit_produce(payload)
                assignments = await future
                out_kind = protocol.GW_PRODUCE_OK
                parts = protocol.encode_produce_ok(request_id, assignments)
            elif kind == protocol.GW_FETCH:
                out_kind, parts = await loop.run_in_executor(
                    self._executor, self._do_fetch, payload
                )
            elif kind == protocol.GW_CREATE_STREAM:
                out_kind, parts = await loop.run_in_executor(
                    self._executor, self._do_create_stream, payload
                )
            elif kind == protocol.GW_META:
                out_kind, parts = self._do_meta(payload)
            else:
                raise protocol.GatewayError(f"unknown request kind {kind}")
        except BaseException as exc:  # noqa: BLE001 - relayed to the client
            self.stats.bump(errors_returned=1)
            out_kind, parts = protocol.GW_ERROR, protocol.encode_error(request_id, exc)
        self.stats.bump(requests_served=1)
        async with write_lock:
            # Parts land contiguously in the writer's buffer; the drain
            # inside the lock applies the transport's backpressure to
            # this response's writer task without interleaving frames.
            write_frame_async(writer, out_kind, parts)
            await writer.drain()

    # -- produce path (completion-driven) -------------------------------------

    def _produce_fast(self, payload: bytes, writer: asyncio.StreamWriter) -> None:
        """Loop-side produce path: no task, no write lock.

        The frame handler calls this synchronously on frame receipt, so
        enrollment (and therefore append order) still follows wire order.
        The response is written from the future's done callback — a
        single synchronous ``write_frame_async`` with no awaits between
        parts, so frames never interleave with the locked writers used
        by the slow paths. Drain is skipped: produce acks are tens of
        bytes and the client is, by construction, reading acks.
        """
        try:
            request_id = protocol.peek_request_id(payload)
        except struct.error:
            return  # not even a request id: nothing to address a reply to
        try:
            future = self._submit_produce(payload)
        except BaseException as exc:  # noqa: BLE001 - relayed to the client
            self.stats.bump(errors_returned=1, requests_served=1)
            if not writer.is_closing():
                write_frame_async(
                    writer, protocol.GW_ERROR, protocol.encode_error(request_id, exc)
                )
            return

        def _respond(fut: "asyncio.Future[list[Any]]") -> None:
            try:
                assignments = fut.result()
            except BaseException as exc:  # noqa: BLE001 - relayed to the client
                self.stats.bump(errors_returned=1)
                out_kind, parts = (
                    protocol.GW_ERROR,
                    protocol.encode_error(request_id, exc),
                )
            else:
                out_kind = protocol.GW_PRODUCE_OK
                parts = protocol.encode_produce_ok(request_id, assignments)
            self.stats.bump(requests_served=1)
            if writer.is_closing():
                return  # connection torn down while the ack was pending
            try:
                write_frame_async(writer, out_kind, parts)
            except (ConnectionError, RuntimeError):  # pragma: no cover - peer gone
                pass

        future.add_done_callback(_respond)

    def _submit_produce(self, payload: bytes) -> "asyncio.Future[list[Any]]":
        """Decode, count, and enroll one produce; returns the future its
        assignments resolve on. Loop thread, synchronous."""
        # Structural decode only: CRC re-validation is deferred to the
        # coalescer's executor flush (one batched pass per merge window)
        # so the loop thread stays free to pull the next frame.
        request_id, producer_id, chunks = protocol.decode_produce(payload, verify=False)
        self.stats.bump(produce_requests=1, chunks_in=len(chunks))
        self.stats.produce_begin()
        loop = self._loop
        assert loop is not None
        greq = _GatewayProduce(request_id, loop.create_future(), len(chunks))
        self._coalescer.enroll(greq, chunks, producer_id)
        return greq.future

    def _resolve_produce(self, greq: _GatewayProduce) -> None:
        """Resolve one gateway produce on the loop thread."""
        self.stats.produce_end()
        if greq.future.cancelled():  # pragma: no cover - connection torn down
            return
        if greq.error is not None:
            greq.future.set_exception(greq.error)
        else:
            greq.future.set_result(greq.assignments)

    # -- request handlers (executor threads) ---------------------------------

    def _do_fetch(self, payload: bytes) -> tuple[int, list[Any]]:
        request_id, consumer_id, max_chunks, positions = protocol.decode_fetch(payload)
        self.stats.bump(fetch_requests=1)
        responses = self.cluster.fetch(
            positions,
            consumer_id=consumer_id,
            max_chunks_per_entry=max_chunks,
            serve_views=True,
        )
        entries = []
        nchunks = 0
        for response in responses:
            for entry in response.entries:
                frames = [chunk.frame for chunk in entry.chunks]  # type: ignore[union-attr]
                nchunks += len(frames)
                entries.append((entry.position, entry.next_position, frames))
        self.stats.bump(chunks_out=nchunks)
        return protocol.GW_FETCH_OK, protocol.encode_fetch_ok(request_id, entries)

    def _do_create_stream(self, payload: bytes) -> tuple[int, list[Any]]:
        request_id, stream_id, num_streamlets = protocol.decode_create_stream(payload)
        self.cluster.create_stream(stream_id, num_streamlets)
        return protocol.GW_OK, protocol.encode_ok(request_id)

    def _do_meta(self, payload: bytes) -> tuple[int, list[Any]]:
        request_id, stream_id = protocol.decode_meta(payload)
        metadata = self.cluster.coordinator.stream(stream_id)
        config = self.cluster.config
        return protocol.GW_META_OK, protocol.encode_meta_ok(
            request_id,
            config.storage.q_active_groups,
            config.chunk_size,
            list(metadata.streamlet_ids),
        )
