"""The asyncio front door: many client connections, one cluster.

One event loop on a dedicated thread serves every connection; the
blocking cluster calls (produce parks on replication acks) run on a
thread pool via ``run_in_executor``, so the loop itself only ever frames,
decodes, and schedules. Concurrency shape per connection:

* the **reader coroutine** pulls frames and spawns one task per request —
  per-connection pipelining: a slow produce does not block the fetch
  behind it, responses correlate by request id, not arrival order;
* the **write side** coalesces: each response's parts land in the
  ``StreamWriter`` buffer under a per-connection lock (frames stay
  contiguous) and drain lets the transport pack many small responses per
  syscall.

Fetch responses are served through the cluster's zero-copy view path
(``serve_views=True``): the chunk-frame memoryviews coming out of the
shared fan-out cache are handed to the stream writer verbatim — many
consumer connections polling the same hot chunks hit one cached,
CRC-validated frame, and the gateway never materializes payload bytes.

Failure containment: a request that raises server-side returns a
``GW_ERROR`` frame carrying the message; a connection that sends garbage
(bad magic, oversized length) is dropped — a byte stream cannot resync —
without touching any other connection.
"""

from __future__ import annotations

import asyncio
import struct
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import RpcError
from repro.wire.netframe import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameProtocolError,
    read_frame_async,
    write_frame_async,
)
from repro.gateway import protocol
from repro.kera.live import LiveKeraCluster


@dataclass
class GatewayStats:
    connections_accepted: int = 0
    connections_open: int = 0
    requests_served: int = 0
    produce_requests: int = 0
    fetch_requests: int = 0
    errors_returned: int = 0
    chunks_in: int = 0
    chunks_out: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)


class GatewayServer:
    """Fronts a live cluster with an asyncio TCP endpoint."""

    def __init__(
        self,
        cluster: LiveKeraCluster,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        executor_workers: int = 16,
    ) -> None:
        self.cluster = cluster
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.stats = GatewayStats()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="gateway-call"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self._address: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind and serve on the loop thread; returns the bound address."""
        if self._thread is not None:
            raise RpcError("gateway already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="gateway-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(30.0):
            raise RpcError("gateway failed to start within 30s")
        if self._startup_error is not None:
            raise RpcError(f"gateway failed to bind: {self._startup_error}")
        assert self._address is not None
        return self._address

    def shutdown(self) -> None:
        loop = self._loop
        if loop is not None and self._stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already closing
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._executor.shutdown(wait=False)

    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RpcError("gateway not started")
        return self._address

    def __enter__(self) -> "GatewayServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port, reuse_address=True
            )
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()

    # -- per-connection ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.bump(connections_accepted=1, connections_open=1)
        loop = asyncio.get_running_loop()
        tasks: set[asyncio.Task[None]] = set()
        write_lock = asyncio.Lock()
        try:
            while True:
                record = await read_frame_async(
                    reader, max_frame_bytes=self.max_frame_bytes
                )
                if record is None:
                    break  # client closed cleanly
                kind, payload = record
                # One task per request: pipelining. The payload is owned
                # bytes (readexactly), so tasks never alias a shared
                # receive buffer.
                task = loop.create_task(
                    self._serve_request(kind, payload, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (FrameProtocolError, ConnectionError, asyncio.IncompleteReadError):
            pass  # garbage or mid-frame drop: this connection only
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer gone
                pass
            self.stats.bump(connections_open=-1)

    async def _serve_request(
        self,
        kind: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            request_id = protocol.peek_request_id(payload)
        except struct.error:
            return  # not even a request id: nothing to address a reply to
        try:
            if kind == protocol.GW_PRODUCE:
                out_kind, parts = await loop.run_in_executor(
                    self._executor, self._do_produce, payload
                )
            elif kind == protocol.GW_FETCH:
                out_kind, parts = await loop.run_in_executor(
                    self._executor, self._do_fetch, payload
                )
            elif kind == protocol.GW_CREATE_STREAM:
                out_kind, parts = await loop.run_in_executor(
                    self._executor, self._do_create_stream, payload
                )
            elif kind == protocol.GW_META:
                out_kind, parts = self._do_meta(payload)
            else:
                raise protocol.GatewayError(f"unknown request kind {kind}")
        except BaseException as exc:  # noqa: BLE001 - relayed to the client
            self.stats.bump(errors_returned=1)
            out_kind, parts = protocol.GW_ERROR, protocol.encode_error(request_id, exc)
        self.stats.bump(requests_served=1)
        async with write_lock:
            # Parts land contiguously in the writer's buffer; the drain
            # inside the lock applies the transport's backpressure to
            # this response's writer task without interleaving frames.
            write_frame_async(writer, out_kind, parts)
            await writer.drain()

    # -- request handlers (executor threads) ---------------------------------

    def _do_produce(self, payload: bytes) -> tuple[int, list[Any]]:
        request_id, producer_id, chunks = protocol.decode_produce(payload)
        self.stats.bump(produce_requests=1, chunks_in=len(chunks))
        responses = self.cluster.produce(chunks, producer_id=producer_id)
        assignments = [a for response in responses for a in response.assignments]
        return protocol.GW_PRODUCE_OK, protocol.encode_produce_ok(
            request_id, assignments
        )

    def _do_fetch(self, payload: bytes) -> tuple[int, list[Any]]:
        request_id, consumer_id, max_chunks, positions = protocol.decode_fetch(payload)
        self.stats.bump(fetch_requests=1)
        responses = self.cluster.fetch(
            positions,
            consumer_id=consumer_id,
            max_chunks_per_entry=max_chunks,
            serve_views=True,
        )
        entries = []
        nchunks = 0
        for response in responses:
            for entry in response.entries:
                frames = [chunk.frame for chunk in entry.chunks]  # type: ignore[union-attr]
                nchunks += len(frames)
                entries.append((entry.position, entry.next_position, frames))
        self.stats.bump(chunks_out=nchunks)
        return protocol.GW_FETCH_OK, protocol.encode_fetch_ok(request_id, entries)

    def _do_create_stream(self, payload: bytes) -> tuple[int, list[Any]]:
        request_id, stream_id, num_streamlets = protocol.decode_create_stream(payload)
        self.cluster.create_stream(stream_id, num_streamlets)
        return protocol.GW_OK, protocol.encode_ok(request_id)

    def _do_meta(self, payload: bytes) -> tuple[int, list[Any]]:
        request_id, stream_id = protocol.decode_meta(payload)
        metadata = self.cluster.coordinator.stream(stream_id)
        config = self.cluster.config
        return protocol.GW_META_OK, protocol.encode_meta_ok(
            request_id,
            config.storage.q_active_groups,
            config.chunk_size,
            list(metadata.streamlet_ids),
        )
