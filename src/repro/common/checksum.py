"""CRC-32C (Castagnoli) checksums.

The paper's record entry headers, chunk headers, and virtual segment
headers all carry checksums (Section IV-A/IV-B). RAMCloud and KerA use
CRC-32C; we implement it here from scratch:

* a slicing-by-8 table-driven implementation for small inputs (the tables
  are generated once at import time with numpy),
* a lane-parallel numpy engine for large inputs: the buffer is split into
  fixed-size blocks whose CRCs are computed in lock step across numpy
  vectors, then stitched together with cached zero-feed shift operators
  (the same GF(2) linearity :func:`crc32c_combine` exploits), and
* :func:`crc32c_combine` so a container checksum can be computed from the
  checksums of its parts without touching the part bytes again — this is
  how a virtual segment's header checksum "covers the chunks' checksums"
  cheaply.

Inputs of :data:`BULK_THRESHOLD` bytes or more dispatch to the lane
engine automatically; callers never choose. Both paths produce identical
values (property-tested against each other and known-answer vectors).

CRC-32C uses the reflected polynomial 0x82F63B78 (normal form 0x1EDC6F41).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

_POLY = 0x82F63B78  # reflected CRC-32C polynomial


def _make_tables() -> np.ndarray:
    """Build the 8 slicing tables, shape (8, 256), dtype uint32."""
    table = np.zeros((8, 256), dtype=np.uint64)
    # Table 0: classic byte-at-a-time table.
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table[0, i] = crc
    # Tables 1..7: table[k][i] = table[0][table[k-1][i] & 0xFF] ^ (table[k-1][i] >> 8)
    for k in range(1, 8):
        prev = table[k - 1]
        table[k] = table[0][(prev & 0xFF).astype(np.intp)] ^ (prev >> np.uint64(8))
    return table.astype(np.uint32)


_TABLES = _make_tables()
# Plain python lists are faster than numpy fancy-indexing for the
# byte-at-a-time inner loop, so keep both forms.
_T = [[int(x) for x in row] for row in _TABLES]
_T0, _T1, _T2, _T3, _T4, _T5, _T6, _T7 = _T


def _make_word_tables() -> np.ndarray:
    """Fold the byte tables pairwise into 16-bit word tables, shape (4, 65536).

    ``_WTABLES[k][w]`` equals ``_TABLES[2k+1][w & 0xFF] ^ _TABLES[2k][w >> 8]``
    for the little-endian word ``w = b_lo | b_hi << 8``, so slicing-by-8
    needs 4 table gathers per 8 bytes instead of 8 — the gathers are what
    bound the numpy lane engine, so halving them nearly doubles it.
    """
    w = np.arange(65536, dtype=np.intp)
    lo = w & 0xFF
    hi = w >> 8
    tables = np.empty((4, 65536), dtype=np.uint32)
    for k in range(4):
        tables[k] = _TABLES[2 * k + 1][lo] ^ _TABLES[2 * k][hi]
    return tables


_WTABLES = _make_word_tables()
#: Little-endian uint16, the lane engine's word dtype: ``w = b0 | b1 << 8``
#: regardless of host endianness, matching the :data:`_WTABLES` layout.
_U16LE = np.dtype("<u2")


#: Input size from which :func:`crc32c_update` switches to the numpy
#: lane engine; below it the python slicing-by-8 loop wins. The scalar
#: loop costs ~0.1 us/byte while the lane engine with a cached
#: positional stitch is ~30 us flat at 1 KB, putting the measured
#: crossover near 512 bytes — so both full 4 KB chunk payloads and the
#: ~1 KB partials a flush seals take the lane path.
BULK_THRESHOLD = 512

#: Block size the lane engine splits inputs into. Small blocks maximise
#: vector width (a 16 KB chunk becomes 1024 parallel lanes), and the
#: stitch cost is logarithmic in the lane count.
_LANE_BYTES = 16


def crc32c_update(crc: int, data: bytes | bytearray | memoryview) -> int:
    """Continue a CRC-32C computation over ``data``.

    ``crc`` is the running checksum as returned by a previous call (or
    ``0`` to start). The value is the *finalized* checksum, i.e. already
    XOR-ed with 0xFFFFFFFF, matching the convention of ``zlib.crc32``.
    """
    buf = memoryview(data).cast("B")
    n = len(buf)
    if n >= BULK_THRESHOLD:
        if crc == 0:
            return crc32c_bulk(buf)
        return crc32c_combine(crc, crc32c_bulk(buf), n)
    crc = (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF
    i = 0
    # Slicing-by-8 main loop.
    end8 = n - (n % 8)
    t0, t1, t2, t3 = _T0, _T1, _T2, _T3
    t4, t5, t6, t7 = _T4, _T5, _T6, _T7
    while i < end8:
        b0 = buf[i] ^ (crc & 0xFF)
        b1 = buf[i + 1] ^ ((crc >> 8) & 0xFF)
        b2 = buf[i + 2] ^ ((crc >> 16) & 0xFF)
        b3 = buf[i + 3] ^ ((crc >> 24) & 0xFF)
        crc = (
            t7[b0]
            ^ t6[b1]
            ^ t5[b2]
            ^ t4[b3]
            ^ t3[buf[i + 4]]
            ^ t2[buf[i + 5]]
            ^ t1[buf[i + 6]]
            ^ t0[buf[i + 7]]
        )
        i += 8
    while i < n:
        crc = t0[(crc ^ buf[i]) & 0xFF] ^ (crc >> 8)
        i += 1
    return (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF


def crc32c(data: bytes | bytearray | memoryview) -> int:
    """Compute the CRC-32C checksum of ``data``."""
    return crc32c_update(0, data)


def verify_crc32c(data: bytes | bytearray | memoryview, expected: int, context: str = "") -> None:
    """Raise :class:`~repro.common.errors.ChecksumError` on mismatch."""
    from repro.common.errors import ChecksumError

    actual = crc32c(data)
    if actual != expected:
        raise ChecksumError(expected, actual, context)


def _gf2_matrix_times(mat: list[int], vec: int) -> int:
    summand = 0
    i = 0
    while vec:
        if vec & 1:
            summand ^= mat[i]
        vec >>= 1
        i += 1
    return summand


def _gf2_matrix_square(square: list[int], mat: list[int]) -> None:
    for i in range(32):
        square[i] = _gf2_matrix_times(mat, mat[i])


def crc32c_combine(crc1: int, crc2: int, len2: int) -> int:
    """Combine two CRC-32C values.

    Returns the checksum of the concatenation ``A + B`` given
    ``crc1 = crc32c(A)``, ``crc2 = crc32c(B)`` and ``len2 = len(B)``,
    without re-reading any bytes. Port of zlib's ``crc32_combine`` to the
    Castagnoli polynomial.
    """
    if len2 <= 0:
        return crc1
    even = [0] * 32
    odd = [0] * 32
    odd[0] = _POLY
    row = 1
    for i in range(1, 32):
        odd[i] = row
        row <<= 1
    _gf2_matrix_square(even, odd)
    _gf2_matrix_square(odd, even)
    while True:
        _gf2_matrix_square(even, odd)
        if len2 & 1:
            crc1 = _gf2_matrix_times(even, crc1)
        len2 >>= 1
        if len2 == 0:
            break
        _gf2_matrix_square(odd, even)
        if len2 & 1:
            crc1 = _gf2_matrix_times(odd, crc1)
        len2 >>= 1
        if len2 == 0:
            break
    return (crc1 ^ crc2) & 0xFFFFFFFF


# -- lane-parallel bulk engine -------------------------------------------------
#
# crc32c(A + B) = L_n(crc32c(A)) ^ crc32c(B), where n = len(B) and L_n is
# the linear operator that feeds n zero bytes through the CRC register
# (the affine pre/post-inversion terms cancel in the XOR). The engine
# computes per-block CRCs for every _LANE_BYTES-sized block in lock step
# across numpy vectors, then folds neighbouring block CRCs pairwise with
# tableized L_n operators, doubling n each round.


def _zero_byte_op() -> list[int]:
    """L_1 as a GF(2) matrix (column i = operator applied to bit i)."""
    cols = []
    for i in range(32):
        reg = 1 << i
        cols.append(_T0[reg & 0xFF] ^ (reg >> 8))
    return cols


def _gf2_matrix_mul(a: list[int], b: list[int]) -> list[int]:
    return [_gf2_matrix_times(a, b[i]) for i in range(32)]


_M1 = _zero_byte_op()
# Cache of tableized L_n operators, keyed by zero-feed length. Keys are
# bounded: powers of two times _LANE_BYTES plus tail lengths below
# _LANE_BYTES. Published idempotently (same key always maps to equal
# tables), so concurrent computation is benign and no lock is needed.
_SHIFT_TABLES: dict[int, np.ndarray] = {}


def _shift_tables(nbytes: int) -> np.ndarray:
    """Byte-indexed lookup tables, shape (4, 256), applying ``L_nbytes``."""
    tables = _SHIFT_TABLES.get(nbytes)
    if tables is not None:
        return tables
    # M1 ** nbytes by square-and-multiply.
    op: list[int] | None = None
    square = _M1
    n = nbytes
    while n:
        if n & 1:
            op = square if op is None else _gf2_matrix_mul(square, op)
        n >>= 1
        if n:
            square = _gf2_matrix_mul(square, square)
    assert op is not None
    tables = np.zeros((4, 256), dtype=np.uint32)
    for b in range(4):
        for v in range(256):
            tables[b, v] = _gf2_matrix_times(op, v << (8 * b))
    _SHIFT_TABLES[nbytes] = tables
    return tables


# Same operators as plain int lists, for the scalar stitching steps
# (python indexing on numpy rows is an order of magnitude slower). Same
# idempotent-publish reasoning as _SHIFT_TABLES.
_SHIFT_ROWS: dict[int, list[list[int]]] = {}


def _shift_rows(nbytes: int) -> list[list[int]]:
    rows = _SHIFT_ROWS.get(nbytes)
    if rows is None:
        rows = [[int(x) for x in row] for row in _shift_tables(nbytes)]
        _SHIFT_ROWS[nbytes] = rows
    return rows


def crc32c_lanes(m: np.ndarray) -> np.ndarray:
    """Finalized CRC-32C of every lane of ``m`` (shape ``(L, lanes)``).

    Row ``j`` holds byte ``j`` of each lane, so the slicing-by-8 recurrence
    advances all lanes in lock step per numpy operation. ``m`` is an
    integer array of byte values — pass ``intp`` to skip the per-gather
    index conversion numpy performs for other dtypes; the result is a
    ``(lanes,)`` uint32 vector. Besides powering :func:`crc32c_bulk`,
    this is the batch engine for many equal-length messages — e.g. the
    uniform-record fast path in :func:`repro.wire.record.encode_records`
    and the replication batch validator :func:`crc32c_many`.
    """
    if m.dtype != np.intp:
        # One up-front cast keeps every table lookup below on the fast
        # indexing path (fancy indexing re-converts non-intp indices on
        # every single gather — 8 per unrolled step).
        m = m.astype(np.intp)
    length = m.shape[0]
    crc = np.full(m.shape[1], 0xFFFFFFFF, dtype=np.uint32)
    t0, t1, t2, t3 = _TABLES[0], _TABLES[1], _TABLES[2], _TABLES[3]
    t4, t5, t6, t7 = _TABLES[4], _TABLES[5], _TABLES[6], _TABLES[7]
    j = 0
    while j + 8 <= length:
        b0 = (crc ^ m[j]) & 0xFF
        b1 = ((crc >> 8) ^ m[j + 1]) & 0xFF
        b2 = ((crc >> 16) ^ m[j + 2]) & 0xFF
        b3 = ((crc >> 24) ^ m[j + 3]) & 0xFF
        crc = (
            t7[b0]
            ^ t6[b1]
            ^ t5[b2]
            ^ t4[b3]
            ^ t3[m[j + 4]]
            ^ t2[m[j + 5]]
            ^ t1[m[j + 6]]
            ^ t0[m[j + 7]]
        )
        j += 8
    while j < length:
        crc = t0[(crc ^ m[j]) & 0xFF] ^ (crc >> 8)
        j += 1
    return crc ^ np.uint32(0xFFFFFFFF)


def crc32c_lanes16(m: np.ndarray) -> np.ndarray:
    """Finalized CRC-32C of every lane of ``m``, words instead of bytes.

    The word twin of :func:`crc32c_lanes`: row ``j`` holds little-endian
    16-bit word ``j`` of each lane (``b_{2j} | b_{2j+1} << 8``), so one
    slicing-by-8 step costs 4 gathers into the :data:`_WTABLES` word
    tables instead of 8 byte gathers. Lane byte counts must be even —
    callers with odd tails peel them off first (both hot callers view
    :data:`_LANE_BYTES`-sized blocks, which are). This is the engine
    behind :func:`crc32c_bulk` and :func:`crc32c_many`'s group pass.
    """
    if m.dtype != np.intp:
        m = m.astype(np.intp)
    words = m.shape[0]
    crc = np.full(m.shape[1], 0xFFFFFFFF, dtype=np.uint32)
    w0t, w1t, w2t, w3t = _WTABLES[0], _WTABLES[1], _WTABLES[2], _WTABLES[3]
    j = 0
    while j + 4 <= words:
        a = (crc ^ m[j]) & 0xFFFF
        b = (crc >> 16) ^ m[j + 1]
        crc = w3t[a] ^ w2t[b] ^ w1t[m[j + 2]] ^ w0t[m[j + 3]]
        j += 4
    if j + 2 <= words:
        a = (crc ^ m[j]) & 0xFFFF
        b = (crc >> 16) ^ m[j + 1]
        crc = w1t[a] ^ w0t[b]
        j += 2
    if j < words:
        # One trailing word: two byte steps against the byte tables.
        t0, t1 = _TABLES[0], _TABLES[1]
        w = m[j]
        crc = t1[(crc ^ w) & 0xFF] ^ t0[((crc >> 8) ^ (w >> 8)) & 0xFF] ^ (crc >> 16)
    return crc ^ np.uint32(0xFFFFFFFF)


#: Combined byte count from which :func:`crc32c_many` checksums an
#: equal-length group in one lane pass; smaller groups use the scalar
#: path per buffer.
_MANY_THRESHOLD = 4096


def crc32c_many(
    buffers: Sequence[bytes | bytearray | memoryview],
) -> list[int]:
    """Finalized CRC-32C of every buffer, vectorized across buffers.

    Equal-length buffers are grouped and checksummed together: all their
    :data:`_LANE_BYTES` blocks advance through one lane matrix and the
    per-buffer lane CRCs fold in a 2-D pairwise reduction, so the numpy
    dispatch overhead of :func:`crc32c_bulk` amortizes over the whole
    group instead of being paid once per buffer. This is the batch
    validation engine for replication: one replicate RPC's frames verify
    in a single pass (see ``BackupStore.append_frames``).

    Byte-identical to calling :func:`crc32c` per buffer (property-tested).
    """
    views = [memoryview(buf).cast("B") for buf in buffers]
    out = [0] * len(views)
    groups: dict[int, list[int]] = {}
    for i, view in enumerate(views):
        groups.setdefault(len(view), []).append(i)
    for length, idxs in groups.items():
        lanes = length // _LANE_BYTES
        if len(idxs) < 2 or lanes < 2 or length * len(idxs) < _MANY_THRESHOLD:
            for i in idxs:
                out[i] = crc32c_update(0, views[i])
            continue
        crcs = _crc32c_group([views[i] for i in idxs], length)
        for i, value in zip(idxs, crcs):
            out[i] = int(value)
    return out


def _apply_shift_2d(tables: np.ndarray, crcs: np.ndarray) -> np.ndarray:
    """Apply a tableized ``L_n`` operator to a uint32 CRC array."""
    s0, s1, s2, s3 = tables[0], tables[1], tables[2], tables[3]
    return s0[crcs & 0xFF] ^ s1[(crcs >> 8) & 0xFF] ^ s2[(crcs >> 16) & 0xFF] ^ s3[crcs >> 24]


# Per-lane-position operator tables, keyed by buffer length: entry
# (i, b, v) applies L_{suffix bytes after lane i} to byte b value v. With
# these, a buffer's CRC is one XOR-reduction over its gathered lane CRCs
# (the pairwise fold's logarithmic rounds collapse to 4 gathers), which
# is what lets crc32c_many amortize across a whole replication batch.
# ~4 MB per cached 16 KB length; lengths are config-determined and few,
# and the cache is bounded below. Idempotent publish, same as the other
# operator caches.
_POSITION_TABLES: dict[int, tuple[np.ndarray, np.ndarray]] = {}
_POSITION_TABLES_MAX = 8


def _position_tables(length: int) -> tuple[np.ndarray, np.ndarray]:
    """``(flat, base)`` positional operators for equal-length stitching.

    ``flat[b]`` is the lane-major flattening of the per-position byte-``b``
    tables (shape ``(4, lanes * 256)``) and ``base`` the per-lane table
    offsets (``lane * 256``, intp), so a gather for k buffers is one flat
    fancy-index per byte instead of broadcasting over two index axes.
    """
    cached = _POSITION_TABLES.get(length)
    if cached is not None:
        return cached
    lanes = length // _LANE_BYTES
    tail = length - lanes * _LANE_BYTES
    ops = np.empty((lanes, 4, 256), dtype=np.uint32)
    if tail:
        current = _shift_tables(tail).copy()
    else:
        # L_0 is the identity: table b maps v to v << 8b.
        current = np.zeros((4, 256), dtype=np.uint32)
        values = np.arange(256, dtype=np.uint32)
        for b in range(4):
            current[b] = values << np.uint32(8 * b)
    step = _shift_tables(_LANE_BYTES)
    for i in range(lanes - 1, -1, -1):
        ops[i] = current
        if i:
            # L_{n + 16} = L_16 after L_n, composed by mapping every
            # table entry through the 16-byte operator (vectorized).
            current = _apply_shift_2d(step, current)
    flat = np.ascontiguousarray(ops.transpose(1, 0, 2).reshape(4, lanes * 256))
    base = (np.arange(lanes, dtype=np.intp) * 256)[np.newaxis, :]
    tables = (flat, base)
    if len(_POSITION_TABLES) < _POSITION_TABLES_MAX:
        _POSITION_TABLES[length] = tables
    return tables


def _crc32c_group(views: list[memoryview], length: int) -> np.ndarray:
    """Lane-engine CRCs of ``k`` equal-``length`` buffers, shape ``(k,)``.

    Computes every buffer's lane CRCs in one lock-step matrix, then
    stitches each buffer in a single vectorized pass: lane i's CRC is
    pushed over the remaining suffix with the cached positional ``L_n``
    tables and the contributions XOR-reduce along the lane axis (CRC is
    linear over GF(2), so the per-lane terms combine by XOR exactly as
    in :func:`crc32c_bulk`'s fold — just flattened).
    """
    k = len(views)
    lanes = length // _LANE_BYTES
    body = lanes * _LANE_BYTES
    arr = np.empty((k, length), dtype=np.uint8)
    for row, view in enumerate(views):
        arr[row] = np.frombuffer(view, dtype=np.uint8, count=length)
    # Row-major reshape keeps buffer r's blocks at lane columns
    # [r * lanes, (r + 1) * lanes), so the flat lane CRCs reshape back
    # to (k, lanes) with each row in block order. The uint16 view is
    # free (the reshape result is C-contiguous) and halves the elements
    # the transposing .astype copy touches.
    m = (
        arr[:, :body]
        .reshape(k * lanes, _LANE_BYTES)
        .view(_U16LE)
        .T.astype(np.intp)
    )
    crcs = crc32c_lanes16(m).reshape(k, lanes)
    flat, base = _position_tables(length)
    g0, g1, g2, g3 = flat[0], flat[1], flat[2], flat[3]
    acc = (
        g0[base + (crcs & 0xFF)]
        ^ g1[base + ((crcs >> 8) & 0xFF)]
        ^ g2[base + ((crcs >> 16) & 0xFF)]
        ^ g3[base + (crcs >> 24)]
    )
    total = np.bitwise_xor.reduce(acc, axis=1)
    if body < length:
        tail_m = arr[:, body:].T.astype(np.intp)
        total ^= crc32c_lanes(tail_m)
    return total


def crc32c_append(crc1: int, crc2: int, len2: int) -> int:
    """Finalized CRC of ``A + B`` from ``crc32c(A)``, ``crc32c(B)``, ``len(B)``.

    The cached-operator fast path of :func:`crc32c_combine`: repeated
    ``len2`` values reuse a tableized zero-feed operator instead of
    rebuilding GF(2) matrices on every call.
    """
    if len2 <= 0:
        return crc1 & 0xFFFFFFFF
    rows = _shift_rows(len2)
    return (
        rows[0][crc1 & 0xFF]
        ^ rows[1][(crc1 >> 8) & 0xFF]
        ^ rows[2][(crc1 >> 16) & 0xFF]
        ^ rows[3][(crc1 >> 24) & 0xFF]
        ^ crc2
    ) & 0xFFFFFFFF


def crc32c_u32le_lanes(values: np.ndarray) -> np.ndarray:
    """Finalized CRC-32C of each value's four little-endian bytes.

    Vectorized byte-at-a-time over the four bytes of every ``uint32``;
    the record encoder uses it to fold stored-checksum header bytes into
    a composed chunk-payload CRC (see :func:`crc32c_concat`) without
    materializing them.
    """
    v = values.astype(np.intp)
    t0 = _TABLES[0]
    crc = np.full(values.shape, 0xFFFFFFFF, dtype=np.uint32)
    for k in range(4):
        b = (v >> (8 * k)) & 0xFF
        crc = t0[(crc & np.uint32(0xFF)).astype(np.intp) ^ b] ^ (crc >> np.uint32(8))
    return crc ^ np.uint32(0xFFFFFFFF)


def crc32c_shift_many(crcs: np.ndarray, nbytes: int) -> np.ndarray:
    """Push every finalized CRC over ``nbytes`` zero-fed bytes.

    The vectorized twin of :func:`crc32c_append`'s operator application:
    ``crc32c_shift_many(crcs, len(B))[i] ^ crc32c(B)`` is the CRC of
    block ``i`` followed by ``B``.
    """
    return _apply_shift_2d(_shift_tables(nbytes), crcs)


# Per-position operators for concatenating equal-size blocks, keyed by
# (block_size, count): entry i applies L_{(count-1-i) * block_size}, the
# zero-feed over block i's suffix. Shapes are workload-determined and
# few (a producer's records-per-chunk counts); each entry is
# count * 4 KB. Idempotent publish, same as the other operator caches.
_CONCAT_TABLES: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
_CONCAT_TABLES_MAX = 64


def _concat_tables(block_size: int, count: int) -> tuple[np.ndarray, np.ndarray]:
    key = (block_size, count)
    cached = _CONCAT_TABLES.get(key)
    if cached is not None:
        return cached
    ops = np.empty((count, 4, 256), dtype=np.uint32)
    # L_0 is the identity: table b maps v to v << 8b.
    current = np.zeros((4, 256), dtype=np.uint32)
    values = np.arange(256, dtype=np.uint32)
    for b in range(4):
        current[b] = values << np.uint32(8 * b)
    step = _shift_tables(block_size)
    for i in range(count - 1, -1, -1):
        ops[i] = current
        if i:
            current = _apply_shift_2d(step, current)
    flat = np.ascontiguousarray(ops.transpose(1, 0, 2).reshape(4, count * 256))
    base = np.arange(count, dtype=np.intp) * 256
    tables = (flat, base)
    if len(_CONCAT_TABLES) < _CONCAT_TABLES_MAX:
        _CONCAT_TABLES[key] = tables
    return tables


def crc32c_concat(crcs: np.ndarray, block_size: int) -> int:
    """CRC of equal-size blocks concatenated, from their per-block CRCs.

    ``crcs[i]`` is the finalized CRC-32C of block ``i``, each
    ``block_size`` bytes; the result equals :func:`crc32c` over the
    concatenation without touching any block bytes. Block i's CRC is
    pushed over its suffix with cached positional operators and the
    contributions XOR-reduce — the n-ary form of :func:`crc32c_append`,
    with the same layout trick as :func:`_crc32c_group`'s stitch. This
    is how a producer seals a chunk whose record CRCs the batch encoder
    just computed: the payload checksum composes instead of re-reading
    ~capacity bytes (property-tested byte-identical).
    """
    n = len(crcs)
    if n == 1:
        return int(crcs[0]) & 0xFFFFFFFF
    flat, base = _concat_tables(block_size, n)
    acc = (
        flat[0][base + (crcs & 0xFF)]
        ^ flat[1][base + ((crcs >> 8) & 0xFF)]
        ^ flat[2][base + ((crcs >> 16) & 0xFF)]
        ^ flat[3][base + (crcs >> 24)]
    )
    return int(np.bitwise_xor.reduce(acc)) & 0xFFFFFFFF


#: Largest input the bulk engine stitches with cached positional tables
#: (one gather set + XOR-reduce) instead of the logarithmic pairwise
#: fold. The fold costs ~8 vectorized rounds of fixed numpy dispatch
#: overhead — the dominant cost for few-KB inputs like chunk payloads —
#: while a positional stitch is 4 gathers; the cap bounds the per-length
#: table cache (a 16 KB length costs ~4 MB, see _POSITION_TABLES).
_POSITION_STITCH_MAX = 16384


def crc32c_bulk(data: bytes | bytearray | memoryview) -> int:
    """CRC-32C via the lane-parallel numpy engine.

    Byte-identical to :func:`crc32c`; preferred for inputs of a few KB and
    up (:func:`crc32c_update` dispatches here automatically). Safe on any
    size — short inputs fall back to the scalar loop.
    """
    buf = memoryview(data).cast("B")
    n = len(buf)
    lanes = n // _LANE_BYTES
    if lanes < 2:
        return crc32c_update(0, buf)
    body = lanes * _LANE_BYTES
    arr = np.frombuffer(buf, dtype=np.uint8, count=body)
    # (lanes, L/2) words -> contiguous (L/2, lanes): column k is block
    # k's little-endian 16-bit words; the .astype copy materializes the
    # transpose and widens to intp in one pass.
    m = arr.reshape(lanes, _LANE_BYTES).view(_U16LE).T.astype(np.intp)
    crcs = crc32c_lanes16(m)
    if n <= _POSITION_STITCH_MAX and (
        n in _POSITION_TABLES or len(_POSITION_TABLES) < _POSITION_TABLES_MAX
    ):
        # Flat positional stitch, exactly _crc32c_group's fold for k=1:
        # push lane i's CRC over its remaining suffix and XOR-reduce.
        flat, base = _position_tables(n)
        offs = base[0]
        acc = (
            flat[0][offs + (crcs & 0xFF)]
            ^ flat[1][offs + ((crcs >> 8) & 0xFF)]
            ^ flat[2][offs + ((crcs >> 16) & 0xFF)]
            ^ flat[3][offs + (crcs >> 24)]
        )
        total = int(np.bitwise_xor.reduce(acc))
        if body < n:
            total ^= crc32c_update(0, buf[body:])
        return total & 0xFFFFFFFF
    block = _LANE_BYTES
    # Pairwise fold: one vectorized round halves the lane count and
    # doubles the block each operator spans. An odd count peels the
    # rightmost CRC aside first, so every round stays fully vectorized.
    pending: list[tuple[int, int]] = []  # (crc, span), peeled right-to-left
    while len(crcs) > 1:
        if len(crcs) % 2:
            pending.append((int(crcs[-1]), block))
            crcs = crcs[:-1]
        tables = _shift_tables(block)
        s0, s1, s2, s3 = tables[0], tables[1], tables[2], tables[3]
        a = crcs[0::2]
        b = crcs[1::2]
        crcs = s0[a & 0xFF] ^ s1[(a >> 8) & 0xFF] ^ s2[(a >> 16) & 0xFF] ^ s3[a >> 24] ^ b
        block *= 2
    total = int(crcs[0])
    # Re-attach the peeled pieces. Each later peel came from a shorter
    # prefix of the body, so walking ``pending`` in reverse appends the
    # pieces left to right; the operator length is the right piece's span.
    for crc_piece, span in reversed(pending):
        rows = _shift_rows(span)
        total = (
            rows[0][total & 0xFF]
            ^ rows[1][(total >> 8) & 0xFF]
            ^ rows[2][(total >> 16) & 0xFF]
            ^ rows[3][total >> 24]
            ^ crc_piece
        )
    if body < n:
        tail = buf[body:]
        rows = _shift_rows(len(tail))
        total = (
            rows[0][total & 0xFF]
            ^ rows[1][(total >> 8) & 0xFF]
            ^ rows[2][(total >> 16) & 0xFF]
            ^ rows[3][total >> 24]
            ^ crc32c_update(0, tail)
        )
    return total & 0xFFFFFFFF
