"""CRC-32C (Castagnoli) checksums.

The paper's record entry headers, chunk headers, and virtual segment
headers all carry checksums (Section IV-A/IV-B). RAMCloud and KerA use
CRC-32C; we implement it here from scratch:

* a slicing-by-8 table-driven implementation for bulk data (the tables are
  generated once at import time with numpy), and
* :func:`crc32c_combine` so a container checksum can be computed from the
  checksums of its parts without touching the part bytes again — this is
  how a virtual segment's header checksum "covers the chunks' checksums"
  cheaply.

CRC-32C uses the reflected polynomial 0x82F63B78 (normal form 0x1EDC6F41).
"""

from __future__ import annotations

import numpy as np

_POLY = 0x82F63B78  # reflected CRC-32C polynomial


def _make_tables() -> np.ndarray:
    """Build the 8 slicing tables, shape (8, 256), dtype uint32."""
    table = np.zeros((8, 256), dtype=np.uint64)
    # Table 0: classic byte-at-a-time table.
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table[0, i] = crc
    # Tables 1..7: table[k][i] = table[0][table[k-1][i] & 0xFF] ^ (table[k-1][i] >> 8)
    for k in range(1, 8):
        prev = table[k - 1]
        table[k] = table[0][(prev & 0xFF).astype(np.intp)] ^ (prev >> np.uint64(8))
    return table.astype(np.uint32)


_TABLES = _make_tables()
# Plain python lists are faster than numpy fancy-indexing for the
# byte-at-a-time inner loop, so keep both forms.
_T = [[int(x) for x in row] for row in _TABLES]
_T0, _T1, _T2, _T3, _T4, _T5, _T6, _T7 = _T


def crc32c_update(crc: int, data: bytes | bytearray | memoryview) -> int:
    """Continue a CRC-32C computation over ``data``.

    ``crc`` is the running checksum as returned by a previous call (or
    ``0`` to start). The value is the *finalized* checksum, i.e. already
    XOR-ed with 0xFFFFFFFF, matching the convention of ``zlib.crc32``.
    """
    buf = memoryview(data).cast("B")
    crc = (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF
    n = len(buf)
    i = 0
    # Slicing-by-8 main loop.
    end8 = n - (n % 8)
    t0, t1, t2, t3 = _T0, _T1, _T2, _T3
    t4, t5, t6, t7 = _T4, _T5, _T6, _T7
    while i < end8:
        b0 = buf[i] ^ (crc & 0xFF)
        b1 = buf[i + 1] ^ ((crc >> 8) & 0xFF)
        b2 = buf[i + 2] ^ ((crc >> 16) & 0xFF)
        b3 = buf[i + 3] ^ ((crc >> 24) & 0xFF)
        crc = (
            t7[b0]
            ^ t6[b1]
            ^ t5[b2]
            ^ t4[b3]
            ^ t3[buf[i + 4]]
            ^ t2[buf[i + 5]]
            ^ t1[buf[i + 6]]
            ^ t0[buf[i + 7]]
        )
        i += 8
    while i < n:
        crc = t0[(crc ^ buf[i]) & 0xFF] ^ (crc >> 8)
        i += 1
    return (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF


def crc32c(data: bytes | bytearray | memoryview) -> int:
    """Compute the CRC-32C checksum of ``data``."""
    return crc32c_update(0, data)


def verify_crc32c(data: bytes | bytearray | memoryview, expected: int, context: str = "") -> None:
    """Raise :class:`~repro.common.errors.ChecksumError` on mismatch."""
    from repro.common.errors import ChecksumError

    actual = crc32c(data)
    if actual != expected:
        raise ChecksumError(expected, actual, context)


def _gf2_matrix_times(mat: list[int], vec: int) -> int:
    summand = 0
    i = 0
    while vec:
        if vec & 1:
            summand ^= mat[i]
        vec >>= 1
        i += 1
    return summand


def _gf2_matrix_square(square: list[int], mat: list[int]) -> None:
    for i in range(32):
        square[i] = _gf2_matrix_times(mat, mat[i])


def crc32c_combine(crc1: int, crc2: int, len2: int) -> int:
    """Combine two CRC-32C values.

    Returns the checksum of the concatenation ``A + B`` given
    ``crc1 = crc32c(A)``, ``crc2 = crc32c(B)`` and ``len2 = len(B)``,
    without re-reading any bytes. Port of zlib's ``crc32_combine`` to the
    Castagnoli polynomial.
    """
    if len2 <= 0:
        return crc1
    even = [0] * 32
    odd = [0] * 32
    odd[0] = _POLY
    row = 1
    for i in range(1, 32):
        odd[i] = row
        row <<= 1
    _gf2_matrix_square(even, odd)
    _gf2_matrix_square(odd, even)
    while True:
        _gf2_matrix_square(even, odd)
        if len2 & 1:
            crc1 = _gf2_matrix_times(even, crc1)
        len2 >>= 1
        if len2 == 0:
            break
        _gf2_matrix_square(odd, even)
        if len2 & 1:
            crc1 = _gf2_matrix_times(odd, crc1)
        len2 >>= 1
        if len2 == 0:
            break
    return (crc1 ^ crc2) & 0xFFFFFFFF
