"""Size and time unit constants plus human-readable formatting.

Sizes are in bytes (int); simulated time is in seconds (float). The
constants exist so that configuration code reads like the paper:
``chunk_size=16 * KB``, ``segment_size=8 * MB``, ``linger=1 * MSEC``.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

#: One microsecond, in seconds.
USEC: float = 1e-6
#: One millisecond, in seconds.
MSEC: float = 1e-3
#: One second.
SEC: float = 1.0


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary-unit suffix (``"16.0 KiB"``)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(records_per_sec: float) -> str:
    """Format a record rate the way the paper reports it (Mrec/s)."""
    if records_per_sec >= 1e6:
        return f"{records_per_sec / 1e6:.2f} Mrec/s"
    if records_per_sec >= 1e3:
        return f"{records_per_sec / 1e3:.1f} Krec/s"
    return f"{records_per_sec:.0f} rec/s"


def fmt_time(seconds: float) -> str:
    """Format a duration with an adaptive unit (``"250.0 us"``)."""
    if seconds == 0:
        return "0 s"
    if abs(seconds) >= 1.0:
        return f"{seconds:.3f} s"
    if abs(seconds) >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if abs(seconds) >= 1e-6:
        return f"{seconds * 1e6:.1f} us"
    return f"{seconds * 1e9:.1f} ns"
