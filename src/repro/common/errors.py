"""Exception hierarchy for the repro library.

All library exceptions derive from :class:`ReproError` so callers can catch
one base type. Subsystems raise the most specific subclass available; the
RPC layer distinguishes retriable from fatal failures so clients can
implement at-least-once retransmission (exactly-once overall, thanks to
producer/chunk sequence numbers de-duplicated at the broker).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class WireFormatError(ReproError):
    """A buffer could not be decoded as a record, chunk, or frame."""


class ChecksumError(WireFormatError):
    """A CRC-32C check failed: the data is corrupt."""

    def __init__(self, expected: int, actual: int, context: str = "") -> None:
        self.expected = expected
        self.actual = actual
        self.context = context
        msg = f"checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
        if context:
            msg = f"{context}: {msg}"
        super().__init__(msg)

    def __reduce__(self) -> tuple[type, tuple[int, int, str]]:
        # args holds the formatted message, not the constructor arguments,
        # so default exception pickling would replay the wrong signature
        # (the process transport relays handler errors across processes).
        return (type(self), (self.expected, self.actual, self.context))


class StorageError(ReproError):
    """Base class for log-structured storage failures."""


class SegmentFullError(StorageError):
    """An append did not fit in the segment's remaining space.

    This is part of the normal control flow of the storage engine: the
    caller rolls over to a fresh segment and retries.
    """


class SegmentSealedError(StorageError):
    """An append was attempted on a sealed (immutable) segment."""


class OffsetOutOfRangeError(StorageError):
    """A seek targeted a record offset outside the retained log range.

    Raised when a consumer positions below the earliest retained offset
    (the data was retired) or beyond the sub-partition's contents. Carries
    the valid range so clients can reposition explicitly instead of
    silently restarting from the log head.
    """

    def __init__(self, offset: int, earliest: int, latest: int, context: str = ""):
        self.offset = offset
        self.earliest = earliest
        self.latest = latest
        self.context = context
        msg = (
            f"record offset {offset} outside retained range "
            f"[{earliest}, {latest})"
        )
        if context:
            msg = f"{context}: {msg}"
        super().__init__(msg)

    def __reduce__(self) -> tuple[type, tuple[int, int, int, str]]:
        # Same pickling care as ChecksumError: args holds the formatted
        # message, not the constructor signature, and fetch errors may be
        # relayed across the process transport.
        return (type(self), (self.offset, self.earliest, self.latest, self.context))


class GroupFullError(StorageError):
    """A group (fixed-size sub-partition) has exhausted its segment quota.

    Like :class:`SegmentFullError` this is normal control flow: the
    streamlet closes the group and creates a fresh one for the same active
    entry.
    """


class ReplicationError(ReproError):
    """A replication invariant was violated (not a transient RPC failure)."""


class RpcError(ReproError):
    """Base class for RPC-level failures."""


class RetriableRpcError(RpcError):
    """The RPC failed transiently; the caller should retransmit."""


class NotLeaderError(RpcError):
    """The contacted broker does not own the requested partition.

    Carries the current leader if known so clients can refresh metadata.
    """

    def __init__(self, stream_id: int, streamlet_id: int, leader: int | None = None):
        self.stream_id = stream_id
        self.streamlet_id = streamlet_id
        self.leader = leader
        super().__init__(
            f"not leader for stream {stream_id} streamlet {streamlet_id}"
            + (f" (leader is broker {leader})" if leader is not None else "")
        )

    def __reduce__(self) -> tuple[type, tuple[int, int, int | None]]:
        # Same pickling care as ChecksumError: args holds the formatted
        # message, not the constructor signature, and fencing errors are
        # relayed across the process transport and the gateway.
        return (type(self), (self.stream_id, self.streamlet_id, self.leader))


class UnknownStreamError(RpcError):
    """The requested stream does not exist on this broker."""

    def __init__(self, stream_id: int):
        self.stream_id = stream_id
        super().__init__(f"unknown stream {stream_id}")


class SimulationError(ReproError):
    """The discrete-event engine detected an internal inconsistency."""


class RecoveryError(ReproError):
    """Crash recovery could not reconstruct a consistent broker state."""
