"""Throughput and latency measurement primitives.

The paper reports ``the average ingestion/processing throughput per
cluster ... measured while concurrently running all producers and
consumers (without considering each client's first few seconds ... )``.
:class:`ThroughputMeter` implements exactly that: record events with
timestamps, then query the rate over a window that excludes warmup.
Aggregation is vectorized with numpy (HPC guide: batch the math, not the
bookkeeping).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.common.errors import ConfigError


class ThroughputMeter:
    """Time-stamped counters with windowed rate queries.

    Construct with ``thread_safe=True`` when many live-mode client
    threads report into one meter: :meth:`add` and the queries then
    synchronize on a lock. The default stays lock-free for the
    single-threaded simulation hot path.
    """

    __slots__ = ("_times", "_counts", "_lock")

    def __init__(self, *, thread_safe: bool = False) -> None:
        self._times: list[float] = []
        self._counts: list[int] = []
        self._lock = threading.Lock() if thread_safe else None

    def add(self, count: int, timestamp: float) -> None:
        """Record ``count`` events completing at ``timestamp``."""
        if self._lock is not None:
            with self._lock:
                self._times.append(timestamp)
                self._counts.append(count)
        else:
            self._times.append(timestamp)
            self._counts.append(count)

    def _snapshot(self) -> tuple[list[float], list[int]]:
        """A consistent (times, counts) view: copied under the lock in
        thread-safe mode so concurrent adds can't skew a query."""
        if self._lock is not None:
            with self._lock:
                return list(self._times), list(self._counts)
        return self._times, self._counts

    @property
    def total(self) -> int:
        _, counts = self._snapshot()
        return int(sum(counts))

    def __len__(self) -> int:
        return len(self._times)

    def rate(self, start: float, end: float) -> float:
        """Events per second completed in ``[start, end)``."""
        if end <= start:
            raise ConfigError(f"empty measurement window [{start}, {end})")
        raw_times, raw_counts = self._snapshot()
        if not raw_times:
            return 0.0
        times = np.asarray(raw_times)
        counts = np.asarray(raw_counts, dtype=np.float64)
        mask = (times >= start) & (times < end)
        return float(counts[mask].sum() / (end - start))

    def per_second_series(self, start: float, end: float) -> np.ndarray:
        """Per-second event counts over ``[start, end)`` (the paper logs
        throughput after each second)."""
        if end <= start:
            raise ConfigError(f"empty measurement window [{start}, {end})")
        edges = np.arange(start, end + 1e-12, 1.0)
        if len(edges) < 2:
            edges = np.array([start, end])
        raw_times, raw_counts = self._snapshot()
        if not raw_times:
            return np.zeros(len(edges) - 1)
        times = np.asarray(raw_times)
        counts = np.asarray(raw_counts, dtype=np.float64)
        hist, _ = np.histogram(times, bins=edges, weights=counts)
        return hist


class Gauge:
    """A thread-safe point-in-time value (e.g. ``flush_lag_bytes``).

    Writers :meth:`add` deltas (possibly from several threads — the ack
    path increments while the flusher thread decrements); readers take
    :attr:`value` snapshots without coordination beyond the lock.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0) -> None:
        self._value = value
        self._lock = threading.Lock()

    def add(self, delta: int) -> int:
        """Apply ``delta`` and return the new value."""
        with self._lock:
            self._value += delta
            return self._value

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class LatencyReservoir:
    """Bounded reservoir of latency samples with percentile queries.

    Deterministic decimation (keep every k-th sample once full) rather
    than random sampling, preserving run-to-run reproducibility.
    """

    __slots__ = ("capacity", "_samples", "_stride", "_seen")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ConfigError("reservoir capacity must be positive")
        self.capacity = capacity
        self._samples: list[float] = []
        self._stride = 1
        self._seen = 0

    def add(self, value: float) -> None:
        self._seen += 1
        if self._seen % self._stride != 0:
            return
        self._samples.append(value)
        if len(self._samples) >= self.capacity:
            # Halve the resolution: keep every other retained sample.
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def count(self) -> int:
        return self._seen

    def percentile(self, q: float) -> float:
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q))

    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.mean(np.asarray(self._samples)))

    def summary(self) -> dict[str, float]:
        return {
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }
