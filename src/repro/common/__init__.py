"""Shared foundations: errors, unit helpers, checksums, identifiers.

Everything in this package is dependency-free (stdlib + numpy only) and is
used by every other ``repro`` subpackage.
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    WireFormatError,
    ChecksumError,
    StorageError,
    SegmentFullError,
    SegmentSealedError,
    GroupFullError,
    ReplicationError,
    RpcError,
    RetriableRpcError,
    NotLeaderError,
    UnknownStreamError,
    SimulationError,
    RecoveryError,
)
from repro.common.units import (
    KB,
    MB,
    GB,
    USEC,
    MSEC,
    SEC,
    fmt_bytes,
    fmt_rate,
    fmt_time,
)
from repro.common.checksum import crc32c, crc32c_update, verify_crc32c
from repro.common.idgen import IdGenerator

__all__ = [
    "ReproError",
    "ConfigError",
    "WireFormatError",
    "ChecksumError",
    "StorageError",
    "SegmentFullError",
    "SegmentSealedError",
    "GroupFullError",
    "ReplicationError",
    "RpcError",
    "RetriableRpcError",
    "NotLeaderError",
    "UnknownStreamError",
    "SimulationError",
    "RecoveryError",
    "KB",
    "MB",
    "GB",
    "USEC",
    "MSEC",
    "SEC",
    "fmt_bytes",
    "fmt_rate",
    "fmt_time",
    "crc32c",
    "crc32c_update",
    "verify_crc32c",
    "IdGenerator",
]
