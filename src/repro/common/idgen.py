"""Monotone identifier generation.

Brokers, segments, virtual segments, groups, and RPCs all need dense
monotone integer ids. A single tiny class keeps this uniform and makes the
"no wall-clock, no global state" rule easy to audit: every generator is
owned by some component, never module-level.
"""

from __future__ import annotations


class IdGenerator:
    """Hands out consecutive integers starting at ``start``."""

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def next(self) -> int:
        """Return the next id and advance."""
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """Return the id :meth:`next` would hand out, without advancing."""
        return self._next

    def reserve(self, count: int) -> range:
        """Atomically reserve ``count`` consecutive ids."""
        if count < 0:
            raise ValueError("count must be >= 0")
        start = self._next
        self._next += count
        return range(start, start + count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdGenerator(next={self._next})"
