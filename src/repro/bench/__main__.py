"""CLI: regenerate paper figures from the command line.

Usage::

    python -m repro.bench fig08 fig13        # specific figures
    python -m repro.bench all                # everything (10-20 minutes)
    python -m repro.bench --list

Environment: ``REPRO_BENCH_DURATION`` (simulated seconds per point,
default 0.15), ``REPRO_BENCH_FULL=1`` (complete sweep axes).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import FIGURES, run_figure
from repro.bench.report import print_figure, save_results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate figures of the CLUSTER'21 virtual-log paper.",
    )
    parser.add_argument("figures", nargs="*", help="figure ids, or 'all'")
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--save", metavar="PATH", help="write series JSON here")
    args = parser.parse_args(argv)

    if args.list or not args.figures:
        for fig_id in sorted(FIGURES):
            print(f"  {fig_id:<20} {FIGURES[fig_id]().title}")
        return 0

    wanted = sorted(FIGURES) if args.figures == ["all"] else args.figures
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    results = []
    for fig_id in wanted:
        started = time.time()
        result = run_figure(fig_id)
        print_figure(result)
        print(f"   [{len(result.results)} points in {time.time() - started:.0f}s]")
        results.append(result)
    if args.save:
        save_results(results, args.save)
        print(f"saved to {args.save}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
