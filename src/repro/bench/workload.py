"""Experiment points: paper parameters → runnable simulations."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.common.units import KB
from repro.replication.config import PolicyMode, ReplicationConfig
from repro.sim.costmodel import CostModel
from repro.storage.config import StorageConfig
from repro.kafka import KafkaConfig, SimKafkaCluster
from repro.kera import KeraConfig, SimKeraCluster
from repro.simdriver import SimResult, SimWorkload


def bench_duration() -> float:
    """Simulated seconds per point (env ``REPRO_BENCH_DURATION``)."""
    return float(os.environ.get("REPRO_BENCH_DURATION", "0.15"))


def _workload(
    *, streams: int | None, streamlets: int | None, producers: int, consumers: int,
    duration: float | None,
) -> SimWorkload:
    dur = duration if duration is not None else bench_duration()
    kwargs: dict[str, Any] = dict(
        num_producers=producers,
        num_consumers=consumers,
        duration=dur,
        warmup=dur / 3,
    )
    if streams is not None:
        return SimWorkload.many_streams(streams, **kwargs)
    assert streamlets is not None
    return SimWorkload.one_stream(streamlets, **kwargs)


@dataclass(frozen=True)
class Point:
    """One datapoint of a figure: a label plus a runnable factory."""

    label: str
    x: Any
    series: str
    factory: Callable[[], Any] = field(compare=False)

    def run(self) -> "PointResult":
        result: SimResult = self.factory().run()
        return PointResult(point=self, result=result)


@dataclass(frozen=True)
class PointResult:
    point: Point
    result: SimResult

    @property
    def mrps(self) -> float:
        return self.result.mrecords_per_sec


def kera_point(
    *,
    series: str,
    x: Any,
    streams: int | None = None,
    streamlets: int | None = None,
    producers: int = 4,
    consumers: int | None = None,
    chunk_kb: float = 1,
    r: int = 3,
    vlogs: int = 4,
    policy: PolicyMode = PolicyMode.SHARED,
    q: int = 1,
    duration: float | None = None,
    cost: CostModel | None = None,
) -> Point:
    """A KerA datapoint with the paper's parameter vocabulary."""

    def factory() -> SimKeraCluster:
        config = KeraConfig(
            num_brokers=4,
            storage=StorageConfig(materialize=False, q_active_groups=q),
            replication=ReplicationConfig(
                replication_factor=r, vlogs_per_broker=vlogs, policy=policy
            ),
            chunk_size=int(chunk_kb * KB),
        )
        workload = _workload(
            streams=streams,
            streamlets=streamlets,
            producers=producers,
            consumers=producers if consumers is None else consumers,
            duration=duration,
        )
        return SimKeraCluster(config, workload, cost or CostModel())

    return Point(label=f"KerA {series} @{x}", x=x, series=series, factory=factory)


def kafka_point(
    *,
    series: str,
    x: Any,
    streams: int | None = None,
    streamlets: int | None = None,
    producers: int = 4,
    consumers: int | None = None,
    chunk_kb: float = 1,
    r: int = 3,
    duration: float | None = None,
    cost: CostModel | None = None,
) -> Point:
    """A Kafka datapoint with the paper's parameter vocabulary."""

    def factory() -> SimKafkaCluster:
        config = KafkaConfig(
            num_brokers=4, replication_factor=r, chunk_size=int(chunk_kb * KB)
        )
        workload = _workload(
            streams=streams,
            streamlets=streamlets,
            producers=producers,
            consumers=producers if consumers is None else consumers,
            duration=duration,
        )
        return SimKafkaCluster(config, workload, cost or CostModel())

    return Point(label=f"Kafka {series} @{x}", x=x, series=series, factory=factory)
