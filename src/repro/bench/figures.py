"""One spec per paper figure, producing the series the paper plots.

Cluster throughput is reported in million records/second over the
post-warmup window, exactly as in Section V. X-axes are trimmed to three
or four points per sweep so the full suite stays tractable; set
``REPRO_BENCH_FULL=1`` for the paper's complete axes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.replication.config import PolicyMode
from repro.bench.workload import Point, PointResult, kafka_point, kera_point


def _full() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def _streams_axis() -> list[int]:
    return [32, 64, 128, 256, 512] if _full() else [32, 128, 512]


def _vlogs_axis() -> list[int]:
    return [1, 2, 4, 8, 16, 32] if _full() else [1, 2, 4, 16, 32]


@dataclass
class FigureSpec:
    """A figure: points to run plus the paper's claim for EXPERIMENTS.md."""

    fig_id: str
    title: str
    paper_claim: str
    points: list[Point]


@dataclass
class FigureResult:
    spec: FigureSpec
    results: list[PointResult] = field(default_factory=list)

    def series(self) -> dict[str, list[tuple[object, float]]]:
        out: dict[str, list[tuple[object, float]]] = {}
        for pr in self.results:
            out.setdefault(pr.point.series, []).append((pr.point.x, pr.mrps))
        return out


# --------------------------------------------------------------------------
# Section V-B: Replicated KerA versus Kafka
# --------------------------------------------------------------------------


def fig08() -> FigureSpec:
    """Scaling the number of streams, chunk 1 KB, 4 producers.

    KerA: one sub-partition per streamlet (configured like a Kafka
    partition), 4 shared virtual logs per broker.
    """
    points = []
    for r in (1, 2, 3):
        for s in _streams_axis():
            points.append(kafka_point(series=f"Kafka R{r}", x=s, streams=s, r=r))
            points.append(
                kera_point(series=f"KerA R{r}", x=s, streams=s, r=r, vlogs=4)
            )
    return FigureSpec(
        "fig08",
        "Scaling the number of streams (Kafka vs KerA, chunk 1 KB, 4 producers)",
        "Throughput increases with streams (more records per RPC) and "
        "decreases with the replication factor; KerA outperforms Kafka "
        "over hundreds of streams (abstract: up to 4x).",
        points,
    )


def fig09() -> FigureSpec:
    """Scaling the number of clients, 128 streams, chunk 16 KB.

    KerA configured like Kafka: one replicated log per partition.
    """
    producers_axis = [4, 8, 16]
    points = []
    for r in (1, 2, 3):
        for p in producers_axis:
            points.append(
                kafka_point(series=f"Kafka R{r}", x=p, streams=128, producers=p,
                            chunk_kb=16, r=r)
            )
            points.append(
                kera_point(series=f"KerA R{r}", x=p, streams=128, producers=p,
                           chunk_kb=16, r=r, policy=PolicyMode.PER_SUBPARTITION)
            )
    return FigureSpec(
        "fig09",
        "Scaling the number of clients (128 streams, chunk 16 KB)",
        "More producers raise total throughput; higher replication factors "
        "lower it; at 16 producers and R3, KerA is ~2x Kafka.",
        points,
    )


def fig10() -> FigureSpec:
    """Low-latency configuration: R3, chunk 1 KB, 4 producers + 4 consumers."""
    points = []
    for s in _streams_axis():
        points.append(kafka_point(series="Kafka", x=s, streams=s, r=3))
        points.append(kera_point(series="KerA 4 vlogs", x=s, streams=s, r=3, vlogs=4))
        points.append(kera_point(series="KerA 32 vlogs", x=s, streams=s, r=3, vlogs=32))
    return FigureSpec(
        "fig10",
        "Low-latency configuration (R3, chunk 1 KB, varying streams)",
        "With few shared virtual logs KerA reaches up to 3x Kafka; with 32 "
        "virtual logs (one-log-per-partition-like) KerA is close to Kafka "
        "at 128 streams.",
        points,
    )


def fig11() -> FigureSpec:
    """High-throughput configuration: 1 stream, 32 partitions, R3.

    KerA: 4 active sub-partitions per streamlet, one virtual log per
    sub-partition.
    """
    producer_axis = [4, 8, 16, 32] if _full() else [4, 16, 32]
    chunk_axis = [4, 16, 64]
    points = []
    for chunk in chunk_axis:
        for p in producer_axis:
            x = f"{p}p/{chunk}KB"
            points.append(
                kafka_point(series=f"Kafka {chunk}KB", x=x, streamlets=32,
                            producers=p, chunk_kb=chunk, r=3)
            )
            points.append(
                kera_point(series=f"KerA {chunk}KB", x=x, streamlets=32,
                           producers=p, chunk_kb=chunk, r=3,
                           policy=PolicyMode.PER_SUBPARTITION, q=4)
            )
    return FigureSpec(
        "fig11",
        "High-throughput configuration (32 partitions, R3, varying "
        "producers and chunk size)",
        "KerA obtains up to 5x better cluster throughput at replication "
        "factor three, benefiting from dynamic partitioning (4 active "
        "groups) and one virtual log per sub-partition.",
        points,
    )


# --------------------------------------------------------------------------
# Section V-C: Impact of the virtual log when optimizing for latency
# --------------------------------------------------------------------------


def fig12() -> FigureSpec:
    """One shared virtual log per broker, up to 512 streams."""
    points = [
        kera_point(series=f"R{r}", x=s, streams=s, producers=8, r=r, vlogs=1)
        for r in (1, 2, 3)
        for s in ([128, 256, 512] if not _full() else [64, 128, 256, 512])
    ]
    return FigureSpec(
        "fig12",
        "Scaling streams with ONE shared virtual log per broker "
        "(8 producers + 8 consumers, chunk 1 KB)",
        "Up to 1.8 Mrec/s for 512 streams at replication factor three "
        "through a single shared virtual log per broker.",
        points,
    )


def fig13() -> FigureSpec:
    """Replication capacity 1/2/4 virtual logs per broker."""
    points = [
        kera_point(series=f"{v} vlogs", x=s, streams=s, producers=8, r=3, vlogs=v)
        for v in (1, 2, 4)
        for s in ([128, 256, 512] if not _full() else [64, 128, 256, 512])
    ]
    return FigureSpec(
        "fig13",
        "Increasing replication capacity (1/2/4 shared virtual logs per "
        "broker, R3, 8 producers + 8 consumers, chunk 1 KB)",
        "Two and four virtual logs increase cluster throughput by up to "
        "30-40% over one.",
        points,
    )


def _vlog_sweep(fig_id: str, streams: int) -> FigureSpec:
    points = [
        kera_point(series=f"R{r}", x=v, streams=streams, producers=8, r=r, vlogs=v)
        for r in (1, 2, 3)
        for v in _vlogs_axis()
    ]
    return FigureSpec(
        fig_id,
        f"Ingestion of {streams} streams varying the number of virtual "
        "logs (8 producers + 8 consumers, chunk 1 KB)",
        "Beyond a small number of shared virtual logs, throughput drops by "
        "up to 40-50% — replication degenerates into many small RPCs.",
        points,
    )


def fig14() -> FigureSpec:
    return _vlog_sweep("fig14", 128)


def fig15() -> FigureSpec:
    return _vlog_sweep("fig15", 256)


def fig16() -> FigureSpec:
    return _vlog_sweep("fig16", 512)


# --------------------------------------------------------------------------
# Section V-D: Impact of the virtual log when optimizing for throughput
# --------------------------------------------------------------------------


def _throughput_fig(fig_id: str, producers: int, claim: str) -> FigureSpec:
    chunk_axis = [4, 8, 16, 32, 64] if _full() else [4, 16, 64]
    points = [
        kera_point(series=f"R{r}", x=c, streamlets=32, producers=producers,
                   chunk_kb=c, r=r, policy=PolicyMode.PER_SUBPARTITION, q=4)
        for r in (1, 2, 3)
        for c in chunk_axis
    ]
    return FigureSpec(
        fig_id,
        f"One virtual log per sub-partition, {producers} producers + "
        f"{producers} consumers (1 stream, 32 streamlets x 4 groups)",
        claim,
        points,
    )


def fig17() -> FigureSpec:
    return _throughput_fig(
        "fig17", 4,
        "Up to ~7 Mrec/s when the chunk size reaches 64 KB with 8 clients.",
    )


def fig18() -> FigureSpec:
    return _throughput_fig(
        "fig18", 8, "~8.3 Mrec/s at 64 KB chunks and replication factor 3."
    )


def fig19() -> FigureSpec:
    return _throughput_fig(
        "fig19", 16, "~8.3 Mrec/s at 64 KB chunks and replication factor 3."
    )


def fig20() -> FigureSpec:
    return _throughput_fig(
        "fig20", 32,
        "With 64 clients, up to ~7.2 Mrec/s — more clients reduce latency "
        "but add pressure, lowering peak throughput.",
    )


def fig21() -> FigureSpec:
    """Varying virtual logs for the throughput configuration."""
    vlogs_axis = [1, 2, 4, 8, 16, 32]
    points = [
        kera_point(series=f"{c}KB", x=v, streamlets=32, producers=8, chunk_kb=c,
                   r=3, vlogs=v, policy=PolicyMode.SHARED, q=4)
        for c in (32, 64)
        for v in vlogs_axis
    ]
    return FigureSpec(
        "fig21",
        "Varying the number of virtual logs, chunk 32/64 KB (8 producers + "
        "8 consumers, 1 stream, 32 streamlets x 4 groups, R3)",
        "8 and 16 virtual logs obtain slightly higher throughput "
        "(~+300 Krec/s) than 32.",
        points,
    )


# --------------------------------------------------------------------------
# Ablations beyond the paper
# --------------------------------------------------------------------------


def abl_consolidation() -> FigureSpec:
    """What consolidation itself buys: batched vs per-chunk replication."""
    from repro.common.units import KB as _KB
    from repro.replication.config import ReplicationConfig
    from repro.storage.config import StorageConfig
    from repro.kera import KeraConfig, SimKeraCluster
    from repro.bench.workload import _workload

    points = []
    for s in (128, 512):
        points.append(
            kera_point(series="4 vlogs (batched)", x=s, streams=s, producers=8,
                       r=3, vlogs=4)
        )
        points.append(
            kera_point(series="per sub-partition", x=s, streams=s, producers=8,
                       r=3, policy=PolicyMode.PER_SUBPARTITION)
        )

        def factory(s=s):
            config = KeraConfig(
                num_brokers=4,
                storage=StorageConfig(materialize=False),
                replication=ReplicationConfig(
                    replication_factor=3, vlogs_per_broker=4,
                    max_batch_chunks=1,  # replicate every chunk individually
                ),
                chunk_size=1 * _KB,
            )
            workload = _workload(
                streams=s, streamlets=None, producers=8, consumers=8, duration=None
            )
            return SimKeraCluster(config, workload)

        points.append(
            Point(label=f"KerA unbatched @{s}", x=s,
                  series="4 vlogs, 1 chunk/RPC", factory=factory)
        )
    return FigureSpec(
        "abl_consolidation",
        "Ablation: consolidated vs per-chunk replication (R3, chunk 1 KB)",
        "Replicating each producer chunk individually (the paper's "
        "Section II-B strawman) forfeits the virtual log's gains.",
        points,
    )


def abl_dispatch() -> FigureSpec:
    """Sensitivity of the virtual-log optimum to the per-RPC dispatch cost."""
    from repro.sim.costmodel import CostModel

    points = []
    for scale, label in ((0.5, "0.5x dispatch"), (1.0, "1x dispatch"), (2.0, "2x dispatch")):
        cost = CostModel()
        cost = cost.scaled(dispatch_cost=cost.dispatch_cost * scale)
        for v in (1, 4, 16, 64):
            points.append(
                kera_point(series=label, x=v, streams=512, producers=8, r=3,
                           vlogs=v, cost=cost)
            )
    return FigureSpec(
        "abl_dispatch",
        "Ablation: per-RPC dispatch cost vs the virtual-log count optimum "
        "(512 streams, R3, chunk 1 KB)",
        "Probes how much of the many-virtual-logs penalty is per-RPC "
        "dispatch overhead (the paper's 'many small I/Os') versus lost "
        "consolidation in the replication pipeline itself.",
        points,
    )


#: Registry of every figure/ablation.
FIGURES = {
    spec_fn.__name__: spec_fn
    for spec_fn in (
        fig08, fig09, fig10, fig11, fig12, fig13, fig14, fig15, fig16,
        fig17, fig18, fig19, fig20, fig21, abl_consolidation, abl_dispatch,
    )
}


def run_figure(fig_id: str) -> FigureResult:
    """Run every point of a figure and collect the series."""
    spec = FIGURES[fig_id]()
    result = FigureResult(spec=spec)
    for point in spec.points:
        result.results.append(point.run())
    return result
