"""Plain-text figure reports: the rows/series the paper plots."""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.figures import FigureResult


def format_figure(result: FigureResult) -> str:
    """Render a figure's series as an aligned text table (Mrec/s)."""
    spec = result.spec
    series = result.series()
    xs: list[object] = []
    for rows in series.values():
        for x, _ in rows:
            if x not in xs:
                xs.append(x)
    lines = [
        f"== {spec.fig_id}: {spec.title}",
        f"   paper: {spec.paper_claim}",
    ]
    header = f"   {'x':>12} | " + " | ".join(f"{name:>18}" for name in series)
    lines.append(header)
    lines.append("   " + "-" * (len(header) - 3))
    table = {name: dict(rows) for name, rows in series.items()}
    for x in xs:
        cells = []
        for name in series:
            value = table[name].get(x)
            cells.append(f"{value:18.3f}" if value is not None else " " * 18)
        lines.append(f"   {str(x):>12} | " + " | ".join(cells))
    return "\n".join(lines)


def print_figure(result: FigureResult) -> None:
    print()
    print(format_figure(result))


def figure_to_dict(result: FigureResult) -> dict:
    """JSON-serializable record for EXPERIMENTS.md bookkeeping."""
    return {
        "fig_id": result.spec.fig_id,
        "title": result.spec.title,
        "paper_claim": result.spec.paper_claim,
        "series": {
            name: [[str(x), mrps] for x, mrps in rows]
            for name, rows in result.series().items()
        },
    }


def save_results(results: list[FigureResult], path: str | Path) -> None:
    payload = [figure_to_dict(r) for r in results]
    Path(path).write_text(json.dumps(payload, indent=2))
