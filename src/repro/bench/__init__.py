"""Benchmark harness: regenerate every figure of the paper's evaluation.

* :mod:`repro.bench.workload` — config builders translating the paper's
  experimental parameters (streams, producers, chunk size, replication
  factor, virtual logs) into system configs + workloads;
* :mod:`repro.bench.figures` — one :class:`FigureSpec` per paper figure
  (8-21) plus the ablations, each producing the same series the paper
  plots;
* :mod:`repro.bench.report` — plain-text series tables and paper-vs-
  measured summaries.

Simulated duration per point is controlled by the ``REPRO_BENCH_DURATION``
environment variable (seconds of simulated time; default 0.1 — enough for
the post-warmup window to stabilize within a few percent).
"""

from repro.bench.workload import (
    kera_point,
    kafka_point,
    bench_duration,
    Point,
    PointResult,
)
from repro.bench.figures import FIGURES, run_figure, FigureResult
from repro.bench.report import format_figure, print_figure

__all__ = [
    "kera_point",
    "kafka_point",
    "bench_duration",
    "Point",
    "PointResult",
    "FIGURES",
    "run_figure",
    "FigureResult",
    "format_figure",
    "print_figure",
]
