"""Base simulated cluster: workload, clients, metrics, run skeleton.

Recreates the paper's experimental setup (Section V-A) on the simulated
substrate:

* B nodes each run the storage system's services (1 dispatch core + 15
  worker cores, 10 GbE NIC, one disk);
* each producer and each consumer is its own client node (``producers and
  consumers run on different nodes``);
* producers are *proxy clients* sharing all streams. The source thread is
  modeled as a fluid: it emits records at rate ``R(n) = n / (n *
  record_cost + chunk_cost)`` where ``n`` is the current chunk fill
  level. Each per-broker request loop draws its share of the fluid
  accumulated since its last request and ships it as up to one chunk per
  partition of that broker. The fill level is therefore an *equilibrium
  outcome* of the closed loop, exactly like the real system: hundreds of
  partitions at 1 KB chunks ship nearly-empty linger-fired chunks, while
  a few dozen partitions at 64 KB ship fat ones;
* consumers pull one chunk per (streamlet, entry) per request and only
  ever see durably-replicated data; a separate source thread iterates the
  records, with the bounded client cache between the two threads.

Cluster assembly (coordinator, cores, completion tracking) lives in
:class:`repro.runtime.ClusterRuntime`; subclasses contribute their
:class:`repro.runtime.SystemAdapter`, register their cost-charging sim
services on the broker nodes, and may spawn extra system processes
(Kafka's follower fetchers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Generator
from typing import Any

from repro.common.errors import ConfigError
from repro.common.idgen import IdGenerator
from repro.common.metrics import LatencyReservoir, ThroughputMeter
from repro.common.units import USEC
from repro.rpc.fabric import RpcFabric
from repro.runtime.runtime import ClusterRuntime
from repro.runtime.sim import SimTransport
from repro.runtime.system import SystemAdapter
from repro.sim.costmodel import CostModel
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.wire.chunk import Chunk

# NOTE: repro.kera.messages is imported lazily inside BaseSimCluster —
# repro.kera's own simulation driver subclasses this module, so a
# top-level import here would be circular.

#: Consumer poll backoff bounds when no data is available.
_POLL_BACKOFF_MIN = 100 * USEC
_POLL_BACKOFF_MAX = 1600 * USEC


@dataclass(frozen=True)
class SimWorkload:
    """The paper's synthetic workload: equal producers and consumers over
    S streams of one-or-more streamlets, 100-byte non-keyed records."""

    num_producers: int = 4
    num_consumers: int = 4
    #: (stream_id, num_streamlets) pairs; e.g. 128 single-partition streams
    #: or one stream with 32 streamlets.
    streams: tuple[tuple[int, int], ...] = ((0, 1),)
    record_size: int = 100
    #: Total simulated seconds.
    duration: float = 0.5
    #: Seconds excluded from the measured window at the start.
    warmup: float = 0.1

    def __post_init__(self) -> None:
        if self.num_producers < 1 or self.num_consumers < 0:
            raise ConfigError("need at least one producer")
        if not self.streams:
            raise ConfigError("need at least one stream")
        if self.record_size <= 0:
            raise ConfigError("record_size must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ConfigError("need 0 <= warmup < duration")

    @classmethod
    def many_streams(cls, count: int, **kwargs: Any) -> "SimWorkload":
        """S single-partition streams (Figures 8, 10, 12-16)."""
        return cls(streams=tuple((i, 1) for i in range(count)), **kwargs)

    @classmethod
    def one_stream(cls, streamlets: int, **kwargs: Any) -> "SimWorkload":
        """One stream of many streamlets (Figures 11, 17-21)."""
        return cls(streams=((0, streamlets),), **kwargs)


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    producer_rate: float
    consumer_rate: float
    records_acked: int
    records_consumed: int
    latency: dict[str, float]
    duration: float
    warmup: float
    #: RPC calls by (service, method).
    rpc_calls: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Average chunks per replication transfer (consolidation metric):
    #: virtual-log batch for KerA, follower-fetch response for Kafka.
    avg_replication_batch_chunks: float = 0.0
    #: Replication RPCs issued (virtual-log batches / follower fetches).
    replication_rpcs: int = 0
    net_bytes: int = 0
    worker_utilization: list[float] = field(default_factory=list)
    dispatch_utilization: list[float] = field(default_factory=list)
    memory_peak_bytes: int = 0

    @property
    def mrecords_per_sec(self) -> float:
        """The paper's unit: million records per second."""
        return self.producer_rate / 1e6

    @property
    def consumer_mrecords_per_sec(self) -> float:
        return self.consumer_rate / 1e6


class BaseSimCluster:
    """Node layout, clients, and run skeleton shared by both systems."""

    def __init__(
        self,
        workload: SimWorkload,
        cost: CostModel,
        *,
        system: SystemAdapter,
        q_active_groups: int,
        chunk_size: int,
        linger: float,
        client_cache_chunks: int,
    ) -> None:
        self.workload = workload
        self.cost = cost
        self.q_active_groups = q_active_groups
        self.chunk_size = chunk_size
        self.linger = linger
        self.client_cache_chunks = client_cache_chunks
        self.env = Environment()
        B = len(system.node_ids)
        P = workload.num_producers
        C = workload.num_consumers
        self.broker_nodes = list(system.node_ids)
        self.producer_nodes = list(range(B, B + P))
        self.consumer_nodes = list(range(B + P, B + P + C))

        self.fabric = RpcFabric(self.env, B + P + C, cost)
        self.transport = SimTransport(self.fabric)
        self.system = system
        self.runtime = ClusterRuntime(system, self.transport)
        self.coordinator = self.runtime.coordinator

        # Metrics.
        self.produced = ThroughputMeter()
        self.consumed = ThroughputMeter()
        self.produce_latency = LatencyReservoir()
        self._request_ids = IdGenerator()

        chunk_records = chunk_size // workload.record_size
        if chunk_records < 1:
            raise ConfigError("chunk_size smaller than one record")
        #: Records a full chunk holds; actual fill level is an emergent
        #: outcome of the fluid source model (see _producer_requests).
        self.chunk_capacity_records = chunk_records

        # Subclass: register the cost-charging sim services.
        self._register_services()

        # Streams.
        for stream_id, streamlets in workload.streams:
            self.runtime.create_stream(stream_id, streamlets)

        # Partition tables.
        self.partitions_by_broker: dict[int, list[tuple[int, int]]] = {
            node: self.coordinator.partitions_on(node) for node in self.broker_nodes
        }
        self.all_partitions = [
            p for node in self.broker_nodes for p in self.partitions_by_broker[node]
        ]

    # -- subclass hooks -------------------------------------------------------

    def _register_services(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _spawn_system_processes(self) -> None:
        """Extra background processes (e.g. Kafka follower fetchers)."""

    def _system_result_fields(self) -> dict[str, Any]:
        """Replication accounting for :class:`SimResult`."""
        return {}

    #: Service name the clients talk to on broker nodes.
    broker_service = "broker"

    # -- completion plumbing ----------------------------------------------------

    def _completion_event(self, broker_id: int, request_id: int) -> Event:
        return self.transport.completion_event(
            self.runtime.completion, broker_id, request_id
        )

    # -- producer processes --------------------------------------------------------

    def _producer_requests(
        self,
        producer_idx: int,
        broker: int,
        partitions: list[tuple[int, int]],
        shared: dict[str, float],
        requests_thread: Resource,
    ) -> Generator[Event, Any, None]:
        from repro.kera.messages import ProduceRequest

        env = self.env
        cost = self.cost
        client_node = self.producer_nodes[producer_idx]
        rc = cost.record_cost_for(len(self.all_partitions))
        scc = cost.producer_source_chunk_cost
        full = self.chunk_capacity_records
        frac = len(partitions) / len(self.all_partitions)
        record_size = self.workload.record_size
        seqs = {p: IdGenerator() for p in partitions}
        #: Client-side chunk pool bound (recycled chunk buffers, Fig. 6).
        pool_cap = 4.0 * full * len(partitions)
        carry = 0.0
        last = env.now
        last_send = -self.linger
        cursor = 0
        while True:
            now = env.now
            n_est = max(shared["n"], 1.0)
            rate = n_est / (n_est * rc + scc)  # records/s from the source
            carry = min(carry + rate * frac * (now - last), pool_cap)
            last = now
            if carry < 1.0:
                # Not one full record yet: sleep a linger's worth.
                yield env.timeout(self.linger)
                continue
            # Linger pacing: unless a full per-partition load is ready,
            # wait out the linger before shipping partial chunks (the
            # paper's 1 ms chunk timeout).
            since_send = now - last_send
            if carry < full * len(partitions) and since_send < self.linger:
                # Guard against a zero-length wait from float rounding,
                # which would loop forever at one simulated instant.
                yield env.timeout(max(self.linger - since_send, 1e-9))
                continue
            last_send = env.now
            k = max(1, min(len(partitions), int(carry)))
            n = int(min(full, max(1.0, carry / k)))
            k = max(1, min(k, int(carry / n)))
            carry -= k * n
            shared["n"] = n
            chunks = []
            for i in range(k):
                stream_id, streamlet_id = partitions[(cursor + i) % len(partitions)]
                chunks.append(
                    Chunk.meta(
                        stream_id=stream_id,
                        streamlet_id=streamlet_id,
                        producer_id=producer_idx,
                        chunk_seq=seqs[(stream_id, streamlet_id)].next(),
                        record_count=n,
                        payload_len=n * record_size,
                    )
                )
            cursor = (cursor + k) % len(partitions)
            # One requests thread per producer (paper, Figure 6): the
            # per-chunk CPU serializes across all brokers' requests, while
            # the RPCs themselves stay outstanding in parallel.
            yield from requests_thread.use(
                cost.producer_request_cost + k * cost.producer_chunk_cost
            )
            request = ProduceRequest(
                request_id=self._request_ids.next(),
                producer_id=producer_idx,
                chunks=chunks,
            )
            started = env.now
            yield from self.fabric.call_inline(
                client_node,
                broker,
                self.broker_service,
                "produce",
                request,
                request.payload_bytes(),
            )
            self.produce_latency.add(env.now - started)
            self.produced.add(request.record_count, env.now)

    # -- consumer processes -----------------------------------------------------------

    def _consumer_assignment(self, consumer_idx: int) -> dict[int, list]:
        """Spread (stream, streamlet, entry) triples over consumers."""
        from repro.kera.messages import FetchPosition

        q = self.q_active_groups
        triples = []
        for stream_id, streamlet_id in self.all_partitions:
            for entry in range(q):
                triples.append((stream_id, streamlet_id, entry))
        C = max(self.workload.num_consumers, 1)
        mine = [t for i, t in enumerate(triples) if i % C == consumer_idx]
        by_broker: dict[int, list] = {}
        for stream_id, streamlet_id, entry in mine:
            leader = self.coordinator.stream(stream_id).leaders[streamlet_id]
            by_broker.setdefault(leader, []).append(
                FetchPosition(
                    stream_id=stream_id, streamlet_id=streamlet_id, entry=entry
                )
            )
        return by_broker

    def _consumer_fetch(
        self,
        consumer_idx: int,
        broker: int,
        positions: list,
        cache: list[tuple[int, int]],
        cache_state: dict[str, Any],
    ) -> Generator[Event, Any, None]:
        from repro.kera.messages import FetchRequest

        env = self.env
        client_node = self.consumer_nodes[consumer_idx]
        backoff = _POLL_BACKOFF_MIN
        current = list(positions)
        while True:
            if cache_state["chunks"] >= self.client_cache_chunks:
                event = Event(env)
                cache_state["space_event"] = event
                yield event
            request = FetchRequest(
                request_id=self._request_ids.next(),
                consumer_id=consumer_idx,
                positions=current,
                max_chunks_per_entry=1,
            )
            response = yield from self.fabric.call_inline(
                client_node,
                broker,
                self.broker_service,
                "fetch",
                request,
                request.payload_bytes(),
            )
            current = [e.next_position for e in response.entries]
            if response.record_count == 0:
                yield env.timeout(backoff)
                backoff = min(backoff * 2, _POLL_BACKOFF_MAX)
                continue
            backoff = _POLL_BACKOFF_MIN
            cache.append((response.record_count, response.chunk_count))
            cache_state["chunks"] += response.chunk_count
            event = cache_state.get("data_event")
            if event is not None:
                cache_state["data_event"] = None
                event.succeed()

    def _consumer_source(
        self, consumer_idx: int, cache: list[tuple[int, int]], cache_state: dict[str, Any]
    ) -> Generator[Event, Any, None]:
        env = self.env
        cost = self.cost
        while True:
            if not cache:
                event = Event(env)
                cache_state["data_event"] = event
                yield event
                continue
            records, chunks = cache.pop(0)
            yield env.timeout(
                records * cost.consumer_record_cost
                + chunks * cost.consumer_pull_chunk_cost
            )
            cache_state["chunks"] -= chunks
            self.consumed.add(records, env.now)
            space = cache_state.get("space_event")
            if space is not None and cache_state["chunks"] < self.client_cache_chunks:
                cache_state["space_event"] = None
                space.succeed()

    # -- run ----------------------------------------------------------------------------

    def run(self) -> SimResult:
        env = self.env
        self._spawn_system_processes()
        # Producers.
        for idx in range(self.workload.num_producers):
            requests_thread = Resource(env, 1)
            shared: dict[str, float] = {"n": 1.0}
            for broker in self.broker_nodes:
                partitions = self.partitions_by_broker[broker]
                if not partitions:
                    continue
                env.process(
                    self._producer_requests(
                        idx, broker, partitions, shared, requests_thread
                    ),
                    name=f"producer{idx}:requests@{broker}",
                )
        # Consumers.
        for idx in range(self.workload.num_consumers):
            cache: list[tuple[int, int]] = []
            cache_state: dict[str, Any] = {"chunks": 0}
            env.process(
                self._consumer_source(idx, cache, cache_state),
                name=f"consumer{idx}:source",
            )
            for broker, positions in self._consumer_assignment(idx).items():
                env.process(
                    self._consumer_fetch(idx, broker, positions, cache, cache_state),
                    name=f"consumer{idx}:fetch@{broker}",
                )

        env.run(until=self.workload.duration)
        return self._result()

    def _result(self) -> SimResult:
        w = self.workload
        elapsed = w.duration
        result = SimResult(
            producer_rate=self.produced.rate(w.warmup, w.duration),
            consumer_rate=self.consumed.rate(w.warmup, w.duration),
            records_acked=self.produced.total,
            records_consumed=self.consumed.total,
            latency=self.produce_latency.summary(),
            duration=w.duration,
            warmup=w.warmup,
            rpc_calls=dict(self.fabric.stats.calls),
            net_bytes=self.fabric.net.bytes_sent,
            worker_utilization=[
                self.fabric.nodes[n].workers.utilization(elapsed)
                for n in self.broker_nodes
            ],
            dispatch_utilization=[
                self.fabric.nodes[n].dispatch.utilization(elapsed)
                for n in self.broker_nodes
            ],
        )
        for key, value in self._system_result_fields().items():
            setattr(result, key, value)
        return result
