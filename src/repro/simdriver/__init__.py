"""Shared discrete-event cluster driver machinery.

Both simulated systems — KerA (:mod:`repro.kera.cluster_sim`) and the
Apache Kafka baseline (:mod:`repro.kafka.cluster_sim`) — drive identical
clients against different broker/replication engines. This package holds
everything they share: node layout, the fluid-source producer model, the
two-thread consumer model, produce-ack completion plumbing, and result
assembly. Keeping the client model literally the same code is what makes
the KerA-vs-Kafka comparisons apples-to-apples, as in the paper.
"""

from repro.simdriver.base import BaseSimCluster, SimWorkload, SimResult

__all__ = ["BaseSimCluster", "SimWorkload", "SimResult"]
