"""InprocTransport: synchronous, single-threaded delivery.

The simplest possible transport — ``call`` runs the target handler
inline and returns its response. No timing, no concurrency; this is the
byte-fidelity path the integration tests and examples drive.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import RpcError
from repro.runtime.transport import Transport


class InprocTransport(Transport):
    """Every call is a plain function call in the caller's thread."""

    def __init__(self) -> None:
        self._services: dict[tuple[int, str], Any] = {}

    def register(
        self, node_id: int, name: str, service: Any, *, workers: int | None = None
    ) -> None:
        key = (node_id, name)
        if key in self._services:
            raise RpcError(f"service {name!r} already registered on node {node_id}")
        self._services[key] = service

    def call(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int = 0,
    ) -> Any:
        try:
            target = self._services[(dst, service)]
        except KeyError:
            raise RpcError(f"no service {service!r} on node {dst}") from None
        return target.handle(method, request)
