"""SocketTransport: service workers in child processes over real TCP.

The fifth transport, and the first one that crosses a machine-shaped
boundary: selected bindings run in *worker processes* connected to the
parent by one TCP connection each, speaking the length-prefixed frame
protocol of :mod:`repro.wire.netframe`. Everything not registered as a
:class:`SocketServiceSpec` keeps the :class:`ThreadedTransport`
behaviour, so a cluster mixes in-process broker services with
out-of-process backups exactly like the shared-memory process mode.

The wire discipline carries over from :mod:`repro.runtime.process`
unchanged — the same ``KIND_REPLICATE``/``KIND_ACK`` packed forms, the
same pickle fallback for every other method — but the boundary copy is
now the kernel's: replicate requests are written with scatter-gather
``sendmsg`` straight from the broker's segment views (header + length
table + frame views, no coalescing copy), and the child reads into a
preallocated buffer with ``recv_into``. Because the bytes crossed an
address space, the rebuilt request carries ``frames_verified=False`` and
the child re-validates CRCs before its store copies the frames out.

Backpressure is a byte-credit window per binding: a
:class:`~repro.replication.flow.FlowController` bounds unacked request
payload in flight to each worker (the TCP socket buffer replaces the
ring's physical bound), ``credit`` exposes the window's free bytes, and
the pipelined shipper throttles on it exactly as it throttles on ring
free bytes. ``TCP_NODELAY`` is set on both ends — consolidation is the
shipper's adaptive batcher's job, not Nagle's.

Connection establishment is child-initiated for port-free rendezvous:
the parent listens on an ephemeral localhost port, each spawned worker
connects back and introduces itself with a ``KIND_HELLO`` frame naming
its ``(node, service)`` binding, so accept order never matters.

Shutdown contract (close-then-drain, as the rings): the parent half-
closes each connection (``SHUT_WR``); the child keeps serving every
request already in the stream, pushes the responses, and exits on EOF;
the parent's reader threads resolve pendings until the stream is dry.
Only calls that never reached a socket fail.
"""

from __future__ import annotations

import multiprocessing
import pickle
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import RpcError
from repro.common.units import MB
from repro.replication.flow import FlowController
from repro.runtime.process import (
    KIND_ACK,
    KIND_PICKLE,
    KIND_REPLICATE,
    _ACK,
    LivenessListener,
    _serve,
    encode_replicate,
)
from repro.runtime.threaded import ThreadedTransport, _PendingCall
from repro.runtime.transport import CallCallback
from repro.wire.netframe import (
    FrameProtocolError,
    FrameReceiver,
    send_frame,
)

#: Frame kinds beyond the shared request/response kinds: the child's
#: self-introduction after connecting back to the parent's rendezvous
#: listener. Payload: ``<q`` node_id + utf-8 service name.
KIND_HELLO = 8
_HELLO_HEAD = struct.Struct("<q")


@dataclass(frozen=True)
class SocketServiceSpec:
    """A service binding to run in a worker process behind a TCP socket.

    ``factory(**kwargs)`` is invoked *in the child* to build the service
    (an object with ``handle(method, request)``); both must be picklable
    and importable from a module top level so the spawn start method
    works too. The parent never constructs the service — state lives
    exclusively in the child, reachable only through framed RPCs.
    """

    factory: Any
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: Byte-credit window: unacked request payload in flight to this
    #: worker (the sockets analog of the request ring's data bytes).
    window_bytes: int = 4 * MB
    #: Per-frame payload ceiling on both directions of the connection.
    max_frame_bytes: int = 64 * MB


def _configure_stream_socket(sock: socket.socket) -> None:
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


def _socket_service_worker(
    factory: Any,
    kwargs: dict[str, Any],
    host: str,
    port: int,
    node_id: int,
    name: str,
    max_frame_bytes: int,
) -> None:
    """Child process main: serve framed requests until EOF, then drain out.

    Mirrors the ring worker's contract: a poison record (malformed
    replicate head, undecodable pickle) is skipped — the caller times
    out, later requests still get served — while a garbage *frame*
    (bad magic) is unrecoverable on a byte stream and ends the worker.
    """
    sock = socket.create_connection((host, port), timeout=30.0)
    service: Any = None
    try:
        _configure_stream_socket(sock)
        sock.settimeout(None)
        hello = _HELLO_HEAD.pack(node_id) + name.encode("utf-8")
        send_frame(sock, KIND_HELLO, [hello])
        service = factory(**kwargs)
        receiver = FrameReceiver(sock, max_frame_bytes=max_frame_bytes)
        while True:
            try:
                record = receiver.recv_frame()
            except FrameProtocolError:
                break  # garbage / mid-frame drop: no resync on a stream
            if record is None:
                break  # parent half-closed and the stream is drained
            kind, view = record
            try:
                try:
                    out_kind, parts = _serve(service, kind, view)
                finally:
                    del view
            except Exception:  # noqa: BLE001 -- a poison record must not wedge the stream: the frame was fully consumed, the caller times out, later requests still get served.
                continue
            try:
                send_frame(sock, out_kind, parts)
            except OSError:
                break  # parent reader gone; it will fail the pending call
    finally:
        close = getattr(service, "close", None)
        if callable(close):
            try:
                # Service shutdown hook: lets a durable backup drain its
                # flusher and fsync segment files before the child exits.
                close()
            except Exception:  # noqa: S110 -- nothing to relay to: the socket is closing; a failed drain must not mask the clean exit path.
                pass
        try:
            sock.close()
        except OSError:  # pragma: no cover - close on a dead socket
            pass


class _SocketBinding:
    """Parent-side endpoint of one worker process."""

    def __init__(self, key: tuple[int, str], spec: SocketServiceSpec) -> None:
        self.key = key
        self.spec = spec
        # Concurrent parent callers (several brokers shipping to one
        # backup) serialize their vectored writes on this lock.
        self.write_lock = threading.Lock()
        self.flow = FlowController(spec.window_bytes)
        self.sock: socket.socket | None = None
        self.receiver: FrameReceiver | None = None
        self.reader: threading.Thread | None = None
        self.process: multiprocessing.process.BaseProcess | None = None
        self.dead = False

    def spawn(
        self,
        ctx: multiprocessing.context.BaseContext,
        host: str,
        port: int,
    ) -> None:
        self.process = ctx.Process(
            target=_socket_service_worker,
            args=(
                self.spec.factory,
                self.spec.kwargs,
                host,
                port,
                self.key[0],
                self.key[1],
                self.spec.max_frame_bytes,
            ),
            name=f"{self.key[1]}@{self.key[0]}:tcp",
            daemon=True,
        )
        self.process.start()

    def attach(self, sock: socket.socket) -> None:
        _configure_stream_socket(sock)
        sock.settimeout(None)
        self.sock = sock
        self.receiver = FrameReceiver(
            sock, max_frame_bytes=self.spec.max_frame_bytes
        )

    def half_close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.shutdown(socket.SHUT_WR)
            except OSError:  # pragma: no cover - peer already gone
                pass

    def destroy(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self.sock = None
        self.receiver = None


class SocketTransport(ThreadedTransport):
    """ThreadedTransport plus process-hosted bindings over framed TCP."""

    def __init__(
        self,
        *,
        queue_depth: int = 128,
        workers_per_service: int = 2,
        call_timeout: float = 30.0,
        write_timeout: float = 5.0,
        host: str = "127.0.0.1",
        accept_timeout: float = 30.0,
    ) -> None:
        super().__init__(
            queue_depth=queue_depth,
            workers_per_service=workers_per_service,
            call_timeout=call_timeout,
        )
        #: How long a send may wait on the credit window before failing.
        self.write_timeout = write_timeout
        self.host = host
        self.accept_timeout = accept_timeout
        self._sockets: dict[tuple[int, str], _SocketBinding] = {}  # guarded-by: _state_lock
        self._pending_lock = threading.Lock()
        #: call_id -> (pending call, its binding, credited payload bytes)
        self._pending: dict[int, tuple[_PendingCall, _SocketBinding, int]] = {}  # guarded-by: _pending_lock
        self._next_call_id = 0  # guarded-by: _pending_lock
        self._listener: socket.socket | None = None
        #: Clean-shutdown flag: the EOF that follows our own half-close
        #: is expected and must not be reported as a worker failure.
        self._draining = threading.Event()
        #: Settable hook: called ``(node_id, service, source, reason)``
        #: when a worker connection drops outside shutdown (the socket
        #: analogue of the process transport's dead-child detection).
        self.liveness_listener: LivenessListener | None = None

    # -- registration / lifecycle -------------------------------------------

    def register(
        self, node_id: int, name: str, service: Any, *, workers: int | None = None
    ) -> None:
        if not isinstance(service, SocketServiceSpec):
            with self._state_lock:
                taken = (node_id, name) in self._sockets
            if taken:
                raise RpcError(f"service {name!r} already registered on node {node_id}")
            super().register(node_id, name, service, workers=workers)
            return
        with self._state_lock:
            if self._started:
                raise RpcError("cannot register services on a started transport")
            key = (node_id, name)
            if key in self._sockets or key in self._bindings:
                raise RpcError(f"service {name!r} already registered on node {node_id}")
            self._sockets[key] = _SocketBinding(key, service)

    def listen_address(self) -> tuple[str, int]:
        """The rendezvous listener's ``(host, port)`` (started transports)."""
        if self._listener is None:
            raise RpcError("transport not started (no rendezvous listener)")
        addr: tuple[str, int] = self._listener.getsockname()
        return addr

    def connection_count(self) -> int:
        """Live worker connections (monitoring / test surface)."""
        with self._state_lock:
            bindings = list(self._sockets.values())
        return sum(
            1 for b in bindings if b.sock is not None and not b.dead
        )

    def start(self) -> None:
        with self._state_lock:
            if self._started:
                return
            bindings = list(self._sockets.values())
        if bindings:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind((self.host, 0))
            listener.listen(len(bindings))
            listener.settimeout(self.accept_timeout)
            self._listener = listener
            host, port = listener.getsockname()
            # Workers come up before any thread-hosted service can issue
            # a call toward them; the fork context keeps startup cheap
            # (children never touch inherited cluster state — only their
            # own socket).
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            for binding in bindings:
                binding.spawn(ctx, host, port)
            unmatched = {b.key: b for b in bindings}
            while unmatched:
                try:
                    conn, _addr = listener.accept()
                except TimeoutError:
                    raise RpcError(
                        f"socket service worker(s) {sorted(unmatched)} did "
                        f"not connect within {self.accept_timeout}s"
                    ) from None
                key = self._read_hello(conn)
                binding = unmatched.pop(key, None)
                if binding is None:
                    conn.close()
                    raise RpcError(f"unexpected hello from unknown binding {key}")
                binding.attach(conn)
            for binding in bindings:
                binding.reader = threading.Thread(
                    target=self._read_loop,
                    args=(binding,),
                    name=f"socket-reader-{binding.key[1]}@{binding.key[0]}",
                    daemon=True,
                )
                binding.reader.start()
        super().start()

    def _read_hello(self, conn: socket.socket) -> tuple[int, str]:
        conn.settimeout(self.accept_timeout)
        receiver = FrameReceiver(conn, max_frame_bytes=1024)
        record = receiver.recv_frame()
        if record is None:
            raise RpcError("worker connection closed before hello")
        kind, view = record
        if kind != KIND_HELLO:
            raise RpcError(f"expected hello frame, got kind {kind}")
        (node_id,) = _HELLO_HEAD.unpack_from(view, 0)
        name = bytes(view[_HELLO_HEAD.size :]).decode("utf-8")
        return (node_id, name)

    def shutdown(self) -> None:
        with self._state_lock:
            bindings = list(self._sockets.values())
            already_closed = self._closed
        if not already_closed:
            # Close-then-drain: children serve every request already in
            # their stream, push the responses, and exit; reader threads
            # keep resolving pendings until the streams are dry.
            self._draining.set()
            for binding in bindings:
                binding.half_close()
            for binding in bindings:
                if binding.process is not None:
                    binding.process.join(timeout=10.0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with self._pending_lock:
                    if not self._pending:
                        break
                time.sleep(0.001)
            for binding in bindings:
                if binding.reader is not None:
                    binding.reader.join(timeout=5.0)
            with self._pending_lock:
                leftover = list(self._pending.values())
                self._pending.clear()
            for call, binding, nbytes in leftover:
                binding.flow.release(nbytes)
                call.error = RpcError("transport shut down with call in flight")
                call.done.set()
                if call.on_done is not None:
                    call.on_done(None, call.error)
            for binding in bindings:
                binding.destroy()
            if self._listener is not None:
                self._listener.close()
        super().shutdown()

    # -- call path -----------------------------------------------------------

    def credit(self, dst: int, service: str) -> int:
        binding = self._sockets.get((dst, service))
        if binding is None:
            return super().credit(dst, service)
        return binding.flow.credit()

    def worker_pid(self, node_id: int, service: str) -> int | None:
        """The OS pid of a socket-hosted binding's worker, if any.

        Chaos tooling uses this to aim real SIGKILLs; thread-hosted
        bindings have no pid of their own and return None.
        """
        binding = self._sockets.get((node_id, service))
        if binding is None or binding.process is None:
            return None
        return binding.process.pid

    def _submit(
        self,
        dst: int,
        service: str,
        method: str,
        request: Any,
        on_done: CallCallback | None,
    ) -> _PendingCall:
        from repro.kera.messages import ReplicateRequest

        binding = self._sockets[(dst, service)]
        if binding.dead:
            raise RpcError(
                f"connection to {service!r} on node {dst} is down"
            )
        if (
            method == "replicate"
            and isinstance(request, ReplicateRequest)
            and request.frames is not None
        ):
            kind = KIND_REPLICATE
            encode = encode_replicate
        else:
            kind = KIND_PICKLE
            encode = None
        call = _PendingCall(method, request, on_done)
        with self._pending_lock:
            call_id = self._next_call_id
            self._next_call_id += 1
        if encode is not None:
            parts = encode(call_id, request)
        else:
            parts = [pickle.dumps((call_id, method, request))]
        nbytes = sum(len(p) for p in parts)
        # Credit first (bounded wait, mirroring the ring's full-write
        # timeout), then register and send.
        if not binding.flow.acquire(nbytes, timeout=self.write_timeout):
            raise RpcError(
                f"credit window full for {service!r} on node {dst} "
                f"(no credit after {self.write_timeout}s)"
            )
        with self._pending_lock:
            self._pending[call_id] = (call, binding, nbytes)
        try:
            with binding.write_lock:
                send_frame(binding.sock, kind, parts)  # type: ignore[arg-type]
        except BaseException as exc:
            with self._pending_lock:
                self._pending.pop(call_id, None)
            binding.flow.release(nbytes)
            raise RpcError(
                f"send to {service!r} on node {dst} failed: {exc!r}"
            ) from exc
        return call

    def call(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int = 0,
    ) -> Any:
        if (dst, service) not in self._sockets:
            return super().call(src, dst, service, method, request, request_bytes)
        if not self._started:
            raise RpcError("transport not started")
        if self._closed:
            raise RpcError("transport is shut down")
        call = self._submit(dst, service, method, request, None)
        if not call.done.wait(self.call_timeout):
            raise RpcError(
                f"{service}.{method} on node {dst} timed out after {self.call_timeout}s"
            )
        if call.error is not None:
            raise call.error
        return call.response

    def call_async(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int = 0,
        *,
        on_done: CallCallback,
    ) -> None:
        if (dst, service) not in self._sockets:
            super().call_async(
                src, dst, service, method, request, request_bytes, on_done=on_done
            )
            return
        if not self._started:
            raise RpcError("transport not started")
        if self._closed:
            raise RpcError("transport is shut down")
        self._submit(dst, service, method, request, on_done)

    # -- response readers ------------------------------------------------------

    def _resolve(
        self, call_id: int, response: Any, error: BaseException | None
    ) -> None:
        with self._pending_lock:
            entry = self._pending.pop(call_id, None)
        if entry is None:  # pragma: no cover - late ack after shutdown
            return
        call, binding, nbytes = entry
        binding.flow.release(nbytes)
        call.response = response
        call.error = error
        call.done.set()
        if call.on_done is not None:
            call.on_done(response, error)

    def _fail_binding(
        self, binding: _SocketBinding, reason: str, *, source: str = "socket-error"
    ) -> None:
        """Connection lost: fail every pending call routed through it."""
        binding.dead = True
        with self._pending_lock:
            doomed = [
                (call_id, call, nbytes)
                for call_id, (call, b, nbytes) in self._pending.items()
                if b is binding
            ]
            for call_id, _call, _nbytes in doomed:
                del self._pending[call_id]
        for _call_id, call, nbytes in doomed:
            binding.flow.release(nbytes)
            call.error = RpcError(reason)
            call.done.set()
            if call.on_done is not None:
                call.on_done(None, call.error)
        listener = self.liveness_listener
        if listener is not None and not self._draining.is_set():
            node_id, service = binding.key
            try:
                listener(node_id, service, source, reason)
            except Exception:  # noqa: S110,BLE001 -- a broken listener must not kill the reader thread; the binding is already marked dead and its pendings failed.
                pass

    def _read_loop(self, binding: _SocketBinding) -> None:
        """One thread per worker connection: decode responses, resolve."""
        from repro.kera.messages import ReplicateResponse

        receiver = binding.receiver
        assert receiver is not None
        while True:
            try:
                record = receiver.recv_frame()
            except (FrameProtocolError, OSError) as exc:
                self._fail_binding(
                    binding,
                    f"worker connection for {binding.key[1]!r} on node "
                    f"{binding.key[0]} broke: {exc}",
                )
                return
            if record is None:
                if self._draining.is_set():
                    return  # clean EOF: child drained and exited
                # EOF without a shutdown in progress: the worker died (a
                # SIGKILLed child closes its socket with a clean FIN, so
                # this is the only signal a kill leaves). Fail the
                # binding's pendings instead of letting them ride out
                # the call timeout.
                self._fail_binding(
                    binding,
                    f"worker connection for {binding.key[1]!r} on node "
                    f"{binding.key[0]} closed unexpectedly (worker died)",
                    source="socket-eof",
                )
                return
            kind, view = record
            try:
                if kind == KIND_ACK:
                    call_id, ok, bytes_held = _ACK.unpack_from(view, 0)
                    response: Any = ReplicateResponse(
                        ok=bool(ok), bytes_held=bytes_held
                    )
                    error: BaseException | None = None
                else:
                    call_id, response, error = pickle.loads(view)
            except Exception:  # noqa: BLE001 - poison response record
                # A response that cannot decode — a short/garbage ack as
                # much as an undecodable pickle — must not kill the
                # reader: skip it; with no call_id to resolve, the
                # pending call times out or fails at shutdown.
                del view
                continue
            del view
            self._resolve(call_id, response, error)
