"""ProcessTransport: service workers in child processes over shm rings.

The fourth transport: selected bindings run in *worker processes*
connected to the parent by two :class:`repro.wire.ring.SpscRing` channels
living in ``multiprocessing.shared_memory`` blocks (request ring: parent
writes, child reads; response ring: child writes, a parent reaper thread
reads). Everything not registered as a :class:`ProcessServiceSpec` keeps
the :class:`ThreadedTransport` behaviour, so a cluster can mix in-process
broker services with out-of-process backups.

Replication is the whole point, so it gets a dedicated zero-pickle wire
form: a ``ReplicateRequest`` carrying frames is packed as a fixed header
plus the raw frame bytes, written straight from the broker's segment
views into the ring (the single boundary copy) and rebuilt in the child
as views *into the ring* — no pickling, no intermediate buffers. Because
the bytes crossed an address space, the rebuilt request carries
``frames_verified=False`` and the child re-validates CRCs — on another
core — before copying frames into its store (the validate-at-boundary
discipline from ``repro.wire.chunk``). Acks return as 20-byte packed
records. Any other method falls back to pickle over the same rings.

Backpressure is physical here: a full request ring refuses the write,
``credit`` exposes the ring's free bytes, and the pipelined shipper
(``repro.kera.shipper``) throttles on it.

Shutdown contract: the request rings are closed *then drained* — the
child keeps serving queued records after close, acks flow back, and the
reaper resolves every pending call before the workers are reaped; only
calls that never reached a ring fail.
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any

from repro.common.errors import RpcError
from repro.common.units import KB, MB
from repro.runtime.threaded import ThreadedTransport
from repro.runtime.transport import CallCallback
from repro.wire.ring import SpscRing

if TYPE_CHECKING:
    # repro.kera imports repro.runtime, so runtime modules import kera
    # message types lazily (package discipline — see runtime/__init__).
    from repro.kera.messages import ReplicateRequest

#: Ring record kinds (0 is the ring's own padding kind).
KIND_PICKLE = 1  # pickled (call_id, method, request) / (call_id, response, error)
KIND_REPLICATE = 2  # packed ReplicateRequest + raw frame bytes
KIND_ACK = 3  # packed ReplicateResponse

#: call_id, src_broker, vlog_id, vseg_id, vseg_capacity, batch_checksum, nframes
_REPL_HEAD = struct.Struct("<QqqqqII")
#: call_id, ok, bytes_held
_ACK = struct.Struct("<QIq")

#: Transport-level liveness notification: ``(node_id, service, source,
#: reason)``. ``source`` names the detection channel ("process-exit" for
#: a reaped worker process, "socket-eof" / "socket-error" for a broken
#: worker connection) so failure detectors can type their verdicts.
LivenessListener = Callable[[int, str, str, str], None]


@dataclass(frozen=True)
class ProcessServiceSpec:
    """A service binding to run in a worker process.

    ``factory(**kwargs)`` is invoked *in the child* to build the service
    (an object with ``handle(method, request)``); both must be picklable
    and importable from a module top level so the spawn start method
    works too. The parent process never constructs the service — state
    lives exclusively in the child, reachable only through RPCs.
    """

    factory: Any
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: Request ring data bytes (bounds in-flight request payload).
    ring_bytes: int = 4 * MB
    #: Response ring data bytes (acks are tiny; pickled responses are not).
    response_ring_bytes: int = 256 * KB


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without taking over its lifetime.

    On 3.13+ ``track=False`` skips the resource tracker entirely. On
    older versions the attach re-registers the name, but the tracker's
    cache is a set, so the duplicate collapses and the parent's single
    ``unlink`` balances it — the child must NOT unregister (that would
    double-remove and make the tracker log KeyErrors).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


def _close_shm(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - stray view still exported
        pass


def decode_replicate(view: memoryview) -> "tuple[int, ReplicateRequest]":
    """Rebuild a replicate request from ring bytes, zero-copy.

    The frames are views into the ring: valid until the record is
    consumed, and flagged unverified because they crossed an address
    space — the store re-checks CRCs before copying them out.
    """
    from repro.kera.messages import ReplicateRequest

    call_id, src, vlog, vseg, cap, checksum, nframes = _REPL_HEAD.unpack_from(view, 0)
    offset = _REPL_HEAD.size
    lens = struct.unpack_from(f"<{nframes}I", view, offset)
    offset += 4 * nframes
    frames = []
    for length in lens:
        frames.append(view[offset : offset + length])
        offset += length
    request = ReplicateRequest(
        src_broker=src,
        vlog_id=vlog,
        vseg_id=vseg,
        vseg_capacity=cap,
        batch_checksum=checksum,
        frames=tuple(frames),
        frames_verified=False,
    )
    return call_id, request


def encode_replicate(
    call_id: int, request: "ReplicateRequest"
) -> list[bytes | memoryview]:
    """Pack a frames-bearing replicate request for the ring (no pickle).

    Returns parts the ring concatenates during its single boundary copy;
    the frame views are handed through untouched.
    """
    frames = request.frames
    assert frames is not None
    head = _REPL_HEAD.pack(
        call_id,
        request.src_broker,
        request.vlog_id,
        request.vseg_id,
        request.vseg_capacity,
        request.batch_checksum,
        len(frames),
    )
    lens = struct.pack(f"<{len(frames)}I", *(len(f) for f in frames))
    return [head, lens, *frames]


def _service_worker(
    factory: Any, kwargs: dict[str, Any], request_name: str, response_name: str
) -> None:
    """Child process main: serve ring records until closed and drained."""
    request_shm = _attach(request_name)
    try:
        response_shm = _attach(response_name)
    except BaseException:
        _close_shm(request_shm)
        raise
    requests: SpscRing | None = None
    responses: SpscRing | None = None
    service: Any = None
    try:
        requests = SpscRing(request_shm.buf)
        responses = SpscRing(response_shm.buf)
        service = factory(**kwargs)
        while True:
            record = requests.read(timeout=0.1)
            if record is None:
                if requests.closed:
                    break  # closed and drained: clean exit
                continue
            kind, view = record
            try:
                try:
                    out_kind, payload = _serve(service, kind, view)
                finally:
                    del view
                    requests.consume()
            except Exception:  # noqa: BLE001 -- a poison record (malformed frame head, undecodable pickle) must not wedge the ring: the slot is consumed either way, the caller times out, later requests still get served.
                continue
            if not responses.write(out_kind, payload, timeout=30.0):
                break  # reaper gone; parent will fail the pending call
    finally:
        close = getattr(service, "close", None)
        if callable(close):
            try:
                # Service shutdown hook: lets a durable backup drain its
                # flusher and fsync segment files before the child exits.
                close()
            except Exception:  # noqa: S110 -- nothing to relay to: the rings are closing; a failed drain must not mask the clean exit path.
                pass
        try:
            if responses is not None:
                responses.close()
            del requests, responses
        finally:
            try:
                _close_shm(request_shm)
            finally:
                _close_shm(response_shm)


def _serve(
    service: Any, kind: int, view: memoryview
) -> tuple[int, list[bytes | memoryview]]:
    """Decode one request record, run the handler, encode the response."""
    from repro.kera.messages import ReplicateResponse

    if kind == KIND_REPLICATE:
        call_id, request = decode_replicate(view)
        method = "replicate"
    else:
        call_id, method, request = pickle.loads(view)
    try:
        response = service.handle(method, request)
    except BaseException as exc:  # noqa: BLE001 - relayed to the caller
        try:
            payload = pickle.dumps((call_id, None, exc))
            pickle.loads(payload)  # prove it survives the round trip
        except Exception:
            payload = pickle.dumps(
                (call_id, None, RpcError(f"{type(exc).__name__}: {exc}"))
            )
        return KIND_PICKLE, [payload]
    if kind == KIND_REPLICATE and isinstance(response, ReplicateResponse):
        packed = _ACK.pack(call_id, 1 if response.ok else 0, response.bytes_held)
        return KIND_ACK, [packed]
    return KIND_PICKLE, [pickle.dumps((call_id, response, None))]


class _ProcessBinding:
    """Parent-side endpoint of one worker process."""

    def __init__(self, key: tuple[int, str], spec: ProcessServiceSpec) -> None:
        self.key = key
        self.spec = spec
        ring_size = 64 + max(spec.ring_bytes, 4 * KB)
        response_size = 64 + max(spec.response_ring_bytes, 4 * KB)
        self.request_shm = shared_memory.SharedMemory(create=True, size=ring_size)
        self.response_shm = shared_memory.SharedMemory(create=True, size=response_size)
        self.requests = SpscRing(self.request_shm.buf, reset=True)
        self.responses = SpscRing(self.response_shm.buf, reset=True)
        # The ring is single-producer: concurrent parent callers (several
        # brokers shipping to one backup) serialize on this lock.
        self.write_lock = threading.Lock()
        self.process: multiprocessing.process.BaseProcess | None = None
        #: Set once the worker process was found dead: submits fail fast
        #: instead of queueing requests no one will ever serve.
        self.dead = False

    def spawn(self, ctx: multiprocessing.context.BaseContext) -> None:
        self.process = ctx.Process(
            target=_service_worker,
            args=(
                self.spec.factory,
                self.spec.kwargs,
                self.request_shm.name,
                self.response_shm.name,
            ),
            name=f"{self.key[1]}@{self.key[0]}",
            daemon=True,
        )
        self.process.start()

    def destroy(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        del self.requests, self.responses
        _close_shm(self.request_shm)
        _close_shm(self.response_shm)
        try:
            self.request_shm.unlink()
            self.response_shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class ProcessTransport(ThreadedTransport):
    """ThreadedTransport plus process-hosted bindings over shm rings."""

    def __init__(
        self,
        *,
        queue_depth: int = 128,
        workers_per_service: int = 2,
        call_timeout: float = 30.0,
        write_timeout: float = 5.0,
    ) -> None:
        super().__init__(
            queue_depth=queue_depth,
            workers_per_service=workers_per_service,
            call_timeout=call_timeout,
        )
        #: How long a ring write may wait on backpressure before failing.
        self.write_timeout = write_timeout
        self._proc: dict[tuple[int, str], _ProcessBinding] = {}  # guarded-by: _state_lock
        self._pending_lock = threading.Lock()
        #: call_id -> (pending call, the binding it was routed through).
        self._pending: dict[int, tuple[Any, _ProcessBinding]] = {}  # guarded-by: _pending_lock
        self._next_call_id = 0  # guarded-by: _pending_lock
        self._reaper: threading.Thread | None = None
        self._reaper_stop = threading.Event()
        #: Clean-shutdown flag: children exiting after close-then-drain
        #: must not be reported as failures.
        self._draining = threading.Event()
        #: Settable hook: called ``(node_id, service, source, reason)``
        #: when a worker process is found dead outside shutdown. The
        #: transport never imports the failover plane — detectors attach
        #: themselves here (dependency points failover -> runtime).
        self.liveness_listener: LivenessListener | None = None

    # -- registration / lifecycle -------------------------------------------

    def register(
        self, node_id: int, name: str, service: Any, *, workers: int | None = None
    ) -> None:
        if not isinstance(service, ProcessServiceSpec):
            with self._state_lock:
                taken = (node_id, name) in self._proc
            if taken:
                raise RpcError(f"service {name!r} already registered on node {node_id}")
            super().register(node_id, name, service, workers=workers)
            return
        with self._state_lock:
            if self._started:
                raise RpcError("cannot register services on a started transport")
            key = (node_id, name)
            if key in self._proc or key in self._bindings:
                raise RpcError(f"service {name!r} already registered on node {node_id}")
            self._proc[key] = _ProcessBinding(key, service)

    def start(self) -> None:
        with self._state_lock:
            if self._started:
                return
            bindings = list(self._proc.values())
        # Workers come up before any thread-hosted service can issue a
        # call toward them; the fork context keeps startup cheap (the
        # children never touch inherited cluster state — only the rings).
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        for binding in bindings:
            binding.spawn(ctx)
        if bindings:
            self._reaper = threading.Thread(
                target=self._reap, name="process-transport-reaper", daemon=True
            )
            self._reaper.start()
        super().start()

    def shutdown(self) -> None:
        with self._state_lock:
            bindings = list(self._proc.values())
            already_closed = self._closed
        if not already_closed:
            # Close-then-drain: children serve every record already in
            # their request ring, push the acks, and exit; the reaper
            # keeps resolving pendings until the response rings are dry.
            self._draining.set()
            for binding in bindings:
                binding.requests.close()
            for binding in bindings:
                if binding.process is not None:
                    binding.process.join(timeout=10.0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with self._pending_lock:
                    if not self._pending:
                        break
                time.sleep(0.001)
            self._reaper_stop.set()
            if self._reaper is not None:
                self._reaper.join(timeout=5.0)
            with self._pending_lock:
                leftover = list(self._pending.values())
                self._pending.clear()
            for call, _binding in leftover:
                call.error = RpcError("transport shut down with call in flight")
                call.done.set()
                if call.on_done is not None:
                    call.on_done(None, call.error)
            for binding in bindings:
                binding.destroy()
        super().shutdown()

    # -- call path -----------------------------------------------------------

    def credit(self, dst: int, service: str) -> int:
        binding = self._proc.get((dst, service))
        if binding is None:
            return super().credit(dst, service)
        return binding.requests.free_bytes

    def worker_pid(self, node_id: int, service: str) -> int | None:
        """The OS pid of a process-hosted binding's worker, if any.

        Chaos tooling uses this to aim real SIGKILLs; thread-hosted
        bindings have no pid of their own and return None.
        """
        binding = self._proc.get((node_id, service))
        if binding is None or binding.process is None:
            return None
        return binding.process.pid

    def _submit(
        self,
        dst: int,
        service: str,
        method: str,
        request: Any,
        on_done: CallCallback | None,
    ) -> Any:
        from repro.runtime.threaded import _PendingCall
        from repro.kera.messages import ReplicateRequest

        binding = self._proc[(dst, service)]
        if binding.dead:
            raise RpcError(f"worker process for {service!r} on node {dst} is dead")
        call = _PendingCall(method, request, on_done)
        with self._pending_lock:
            call_id = self._next_call_id
            self._next_call_id += 1
            self._pending[call_id] = (call, binding)
        if (
            method == "replicate"
            and isinstance(request, ReplicateRequest)
            and request.frames is not None
        ):
            kind, parts = KIND_REPLICATE, encode_replicate(call_id, request)
        else:
            kind, parts = KIND_PICKLE, [pickle.dumps((call_id, method, request))]
        with binding.write_lock:
            ok = binding.requests.write(kind, parts, timeout=self.write_timeout)
        if not ok:
            with self._pending_lock:
                self._pending.pop(call_id, None)
            raise RpcError(
                f"request ring full for {service!r} on node {dst} "
                f"(no credit after {self.write_timeout}s)"
            )
        return call

    def call(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int = 0,
    ) -> Any:
        if (dst, service) not in self._proc:
            return super().call(src, dst, service, method, request, request_bytes)
        if not self._started:
            raise RpcError("transport not started")
        if self._closed:
            raise RpcError("transport is shut down")
        call = self._submit(dst, service, method, request, None)
        if not call.done.wait(self.call_timeout):
            raise RpcError(
                f"{service}.{method} on node {dst} timed out after {self.call_timeout}s"
            )
        if call.error is not None:
            raise call.error
        return call.response

    def call_async(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int = 0,
        *,
        on_done: CallCallback,
    ) -> None:
        if (dst, service) not in self._proc:
            super().call_async(
                src, dst, service, method, request, request_bytes, on_done=on_done
            )
            return
        if not self._started:
            raise RpcError("transport not started")
        if self._closed:
            raise RpcError("transport is shut down")
        self._submit(dst, service, method, request, on_done)

    # -- response reaper ------------------------------------------------------

    def _resolve(self, call_id: int, response: Any, error: BaseException | None) -> None:
        with self._pending_lock:
            entry = self._pending.pop(call_id, None)
        if entry is None:  # pragma: no cover - late ack after shutdown
            return
        call, _binding = entry
        call.response = response
        call.error = error
        call.done.set()
        if call.on_done is not None:
            call.on_done(response, error)

    def _fail_dead_binding(self, binding: _ProcessBinding) -> None:
        """A worker process died (not a clean shutdown): fail every call
        routed through it and notify the liveness listener."""
        binding.dead = True
        node_id, service = binding.key
        exitcode = None if binding.process is None else binding.process.exitcode
        reason = (
            f"worker process for {service!r} on node {node_id} died "
            f"(exitcode {exitcode})"
        )
        with self._pending_lock:
            doomed = [
                (call_id, call)
                for call_id, (call, b) in self._pending.items()
                if b is binding
            ]
            for call_id, _call in doomed:
                del self._pending[call_id]
        for _call_id, call in doomed:
            call.error = RpcError(reason)
            call.done.set()
            if call.on_done is not None:
                call.on_done(None, call.error)
        listener = self.liveness_listener
        if listener is not None:
            try:
                listener(node_id, service, "process-exit", reason)
            except Exception:  # noqa: S110,BLE001 -- a broken listener must not kill the reaper; liveness keeps being reported for the remaining bindings.
                pass

    def _check_liveness(self, bindings: list[_ProcessBinding]) -> None:
        if self._draining.is_set():
            return
        for binding in bindings:
            if binding.dead or binding.process is None:
                continue
            if not binding.process.is_alive():
                self._fail_dead_binding(binding)

    def _reap(self) -> None:
        """Single thread draining every response ring: decode, resolve."""
        from repro.kera.messages import ReplicateResponse

        bindings = list(self._proc.values())
        next_liveness = time.monotonic() + 0.05
        while True:
            now = time.monotonic()
            if now >= next_liveness:
                # Dead-child detection: a SIGKILLed worker never answers,
                # so its pendings must fail instead of riding out the
                # call timeout.
                self._check_liveness(bindings)
                next_liveness = now + 0.05
            drained = True
            for binding in bindings:
                record = binding.responses.try_read()
                if record is None:
                    continue
                drained = False
                kind, view = record
                try:
                    if kind == KIND_ACK:
                        call_id, ok, bytes_held = _ACK.unpack_from(view, 0)
                        response: Any = ReplicateResponse(
                            ok=bool(ok), bytes_held=bytes_held
                        )
                        error: BaseException | None = None
                    else:
                        call_id, response, error = pickle.loads(view)
                except Exception:  # noqa: BLE001 - poison record
                    # A response that cannot decode — a short/garbage ack
                    # (struct.error) as much as an undecodable pickle —
                    # must not kill the reaper: skip it; with no call_id
                    # to resolve, the pending call times out or fails at
                    # shutdown.
                    del view
                    binding.responses.consume()
                    continue
                del view
                binding.responses.consume()
                self._resolve(call_id, response, error)
            if drained:
                if self._reaper_stop.is_set():
                    return
                time.sleep(0.0005)
