"""SimTransport: the discrete-event fabric behind the Transport protocol.

Calls route through :class:`repro.rpc.fabric.RpcFabric`, so they carry
the full simulated life cycle (dispatch CPU, wire transfer, worker
execution). ``call`` returns a *generator* — the simulated caller must
``yield from`` it inside an environment process; services are
:class:`repro.rpc.fabric.Service` generators that may yield
``RELEASE_WORKER`` to park.

:class:`SimKeraReplication` is KerA's push-replication pipeline on this
transport: one shipping process per virtual log, one batch in flight,
staging cost charged against the broker's workers — the simulated twin
of :meth:`repro.runtime.system.KeraSystem.drive_replication`.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, TYPE_CHECKING

from repro.runtime.transport import Transport
from repro.sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.rpc.fabric import RpcFabric
    from repro.runtime.completion import CompletionTracker
    from repro.runtime.system import KeraSystem
    from repro.sim.costmodel import CostModel
    from repro.sim.engine import Environment


class SimTransport(Transport):
    """Requests travel over the simulated RPC fabric."""

    def __init__(self, fabric: "RpcFabric") -> None:
        self.fabric = fabric
        self.env = fabric.env

    def register(
        self, node_id: int, name: str, service: Any, *, workers: int | None = None
    ) -> None:
        self.fabric.register(node_id, name, service)

    def call(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int = 0,
    ) -> Generator[Event, Any, Any]:
        """Synchronous-from-the-caller RPC: ``yield from`` the result."""
        return self.fabric.call_inline(src, dst, service, method, request, request_bytes)

    def call_spawn(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int = 0,
    ) -> Any:
        """Fan-out form: returns a process to combine with ``all_of``.

        Distinct from :meth:`Transport.call_async` (the live callback
        API) — in the sim world completion is an event, not a callback.
        """
        return self.fabric.call(src, dst, service, method, request, request_bytes)

    def completion_event(
        self, completion: "CompletionTracker", node_id: int, request_id: int
    ) -> Event:
        """A sim event that succeeds when the request completes (already
        succeeded if the completion beat the registration)."""
        event = Event(self.env)
        if completion.register(node_id, request_id, event.succeed):
            event.succeed()
        return event


class SimKeraReplication:
    """KerA's simulated push-replication pipeline (one per driver)."""

    def __init__(
        self,
        env: "Environment",
        fabric: "RpcFabric",
        cost: "CostModel",
        system: "KeraSystem",
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.cost = cost
        self.system = system

    def start_shipments(self, broker_id: int) -> None:
        """Spawn a shipping process per virtual log made ready by the
        produce call that just ran."""
        core = self.system.broker_cores[broker_id]
        for batch in core.collect_batches():
            vlog = core.vlog_for_batch(batch)
            self.env.process(
                self._ship_loop(broker_id, vlog, batch),
                name=f"ship:b{broker_id}v{batch.vlog_id}",
            )

    def _ship_loop(
        self, broker_id: int, vlog: Any, batch: Any
    ) -> Generator[Event, Any, None]:
        core = self.system.broker_cores[broker_id]
        cost = self.cost
        workers = self.fabric.nodes[broker_id].workers
        while batch is not None:
            # Staging the batch (reference walk, wire headers, checksum
            # folding) consumes broker worker CPU and serializes per
            # virtual log — the replication pipeline a single shared log
            # provides, and the reason replication capacity is a knob.
            yield from workers.use(
                cost.repl_batch_send_cost
                + batch.chunk_count * cost.repl_chunk_send_cost
            )
            request = self.system.replicate_request(broker_id, batch)
            nbytes = request.payload_bytes()
            if len(batch.backups) == 1:
                yield from self.fabric.call_inline(
                    broker_id, batch.backups[0], "backup", "replicate", request, nbytes
                )
            else:
                rpcs = [
                    self.fabric.call(
                        broker_id, backup, "backup", "replicate", request, nbytes
                    )
                    for backup in batch.backups
                ]
                yield self.env.all_of(rpcs)
            core.complete_batch(batch)
            batch = vlog.next_batch()
