"""Transport-agnostic cluster runtime.

The broker, backup, and coordinator cores are sans-IO state machines;
this package owns everything around them that used to be hand-wired per
driver: request completion tracking, core construction, stream catalog
plumbing, and the replication drive loop. A driver now only picks a
:class:`Transport` and contributes thin per-transport effect handlers
(cost charging in the simulator, locking in the threaded live mode).

* :class:`Transport` — how a request reaches a service on a node and how
  its response comes back (``repro.runtime.transport``);
* :class:`ClusterRuntime` — wires coordinator + system cores + completion
  tracking once, for every transport (``repro.runtime.runtime``);
* :class:`KeraSystem` / :class:`KafkaSystem` — system adapters
  contributing only their cores and effect handlers
  (``repro.runtime.system``);
* :class:`SimTransport` — the discrete-event fabric
  (``repro.runtime.sim``), :class:`InprocTransport` — synchronous
  in-process calls, :class:`ThreadedTransport` — one bounded request
  queue and worker-thread pool per (node, service).

Import discipline: this package is imported *by* ``repro.kera`` and
``repro.kafka`` (their drivers run on it), so every import of those
packages' cores happens lazily inside methods — never at module level.
"""

from repro.runtime.completion import CompletionTracker
from repro.runtime.transport import Transport
from repro.runtime.runtime import ClusterRuntime
from repro.runtime.system import SystemAdapter, KeraSystem, KafkaSystem
from repro.runtime.inproc import InprocTransport
from repro.runtime.threaded import ThreadedTransport
from repro.runtime.process import ProcessTransport, ProcessServiceSpec
from repro.runtime.socket_transport import SocketTransport, SocketServiceSpec
from repro.runtime.sim import SimTransport, SimKeraReplication

__all__ = [
    "CompletionTracker",
    "Transport",
    "ClusterRuntime",
    "SystemAdapter",
    "KeraSystem",
    "KafkaSystem",
    "InprocTransport",
    "ThreadedTransport",
    "ProcessTransport",
    "ProcessServiceSpec",
    "SocketTransport",
    "SocketServiceSpec",
    "SimTransport",
    "SimKeraReplication",
]
