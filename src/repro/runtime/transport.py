"""The Transport protocol: deliver request -> route to service -> respond.

A transport owns request *delivery*; it knows nothing about streams,
replication, or durability. Implementations differ only in how a call
travels:

* :class:`repro.runtime.sim.SimTransport` — over the discrete-event RPC
  fabric; ``call`` returns a generator the caller must ``yield from``
  inside a simulated process, and services are
  :class:`repro.rpc.fabric.Service` generators;
* :class:`repro.runtime.inproc.InprocTransport` — the handler runs
  inline; ``call`` returns the response directly;
* :class:`repro.runtime.threaded.ThreadedTransport` — the request is
  enqueued on the target (node, service) bounded queue and executed by
  that service's worker threads; ``call`` blocks until the response (or
  a timeout) and returns it.

Live (non-sim) services implement ``handle(method, request) -> response``
and may block (e.g. a produce handler parking until replication acks);
exceptions raised by a handler propagate to the caller.

Adding a new transport (e.g. sockets or asyncio) means implementing this
class and, if the system needs behaviour per transport (locking, cost
charging), thin service wrappers around the same cores — see
``repro/kera/threaded.py`` for the worked example.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

#: Completion callback for :meth:`Transport.call_async`: exactly one of
#: (response, error) is non-None. Runs on a transport-owned thread — keep
#: it short and never call back into the transport synchronously.
CallCallback = Callable[[Any, BaseException | None], None]


class LiveService:
    """Base class for live (non-simulated) services."""

    def handle(self, method: str, request: Any) -> Any:  # pragma: no cover
        raise NotImplementedError


class Transport:
    """How requests move between nodes. See the module docstring for the
    sim/live calling-convention difference on :meth:`call`."""

    def register(
        self, node_id: int, name: str, service: Any, *, workers: int | None = None
    ) -> None:
        """Bind ``service`` to ``(node, name)``; one service per binding.

        ``workers`` is advisory sizing for concurrent transports (worker
        threads serving this binding's queue); others ignore it.
        """
        raise NotImplementedError

    def call(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int = 0,
    ) -> Any:
        """Deliver ``request`` to ``service.method`` on node ``dst``.

        ``request_bytes`` is the wire size, charged by transports that
        model the network; byte-oblivious transports ignore it.
        """
        raise NotImplementedError

    def call_async(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int = 0,
        *,
        on_done: CallCallback,
    ) -> None:
        """Issue a call without waiting; ``on_done(response, error)`` fires
        when it resolves. The default runs the call synchronously — only
        concurrent transports gain actual pipelining by overriding this.
        """
        try:
            response = self.call(src, dst, service, method, request, request_bytes)
        except BaseException as exc:  # noqa: BLE001 - relayed to the callback
            on_done(None, exc)
        else:
            on_done(response, None)

    def credit(self, dst: int, service: str) -> int:
        """Bytes of in-flight work ``(dst, service)`` can absorb right now.

        Transports with real bounded channels (shared-memory rings)
        report their free bytes; others report a large constant so credit
        never gates shipping.
        """
        return 1 << 62

    def start(self) -> None:
        """Bring the transport up (spawn threads, open sockets)."""

    def shutdown(self) -> None:
        """Tear the transport down; idempotent."""
