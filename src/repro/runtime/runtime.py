"""ClusterRuntime: coordinator + cores + completion, wired once.

Every driver — simulated, synchronous in-process, threaded — used to
repeat the same assembly: build a coordinator over the broker nodes,
construct each node's cores with a completion callback, and fan stream
creation out to the leading cores. The runtime does it once; a driver
contributes only its transport and its per-transport service wrappers.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.completion import CompletionTracker
from repro.runtime.system import SystemAdapter
from repro.runtime.transport import Transport


class ClusterRuntime:
    """One assembled cluster: system cores over a transport."""

    def __init__(self, system: SystemAdapter, transport: Transport) -> None:
        # Lazy: repro.kera imports this package for its drivers.
        from repro.kera.coordinator import Coordinator

        self.system = system
        self.transport = transport
        self.completion = CompletionTracker()
        self.coordinator = Coordinator(list(system.node_ids))
        system.build_cores(self.completion)

    def create_stream(self, stream_id: int, num_streamlets: int) -> Any:
        """Create a stream in the catalog and on its leading cores."""
        meta = self.coordinator.create_stream(stream_id, num_streamlets)
        self.system.on_stream_created(meta)
        return meta

    def leader_of(self, stream_id: int, streamlet_id: int) -> int:
        return self.coordinator.stream(stream_id).leaders[streamlet_id]

    def start(self) -> None:
        self.transport.start()

    def shutdown(self) -> None:
        self.transport.shutdown()
