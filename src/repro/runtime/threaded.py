"""ThreadedTransport: bounded per-service request queues + worker threads.

The concurrent live mode: each registered (node, service) binding gets a
bounded :class:`queue.Queue` and its own pool of daemon worker threads.
``call`` enqueues the request (blocking when the queue is full — real
backpressure) and waits for the response on a per-call event; handler
exceptions are captured and re-raised in the caller's thread.

Unlike the simulated fabric there is no worker-release: a handler that
parks (KerA's produce waiting for replication acks) holds its worker
thread, so a binding's ``workers`` bounds how many requests can be parked
at once before later calls queue behind them. Replication shippers run on
their own threads (see ``repro/kera/threaded.py``), so parked produces
always make progress.
"""

from __future__ import annotations

import queue
import threading
from typing import Any

from repro.common.errors import RpcError
from repro.runtime.transport import CallCallback, Transport


class _PendingCall:
    """One in-flight request: the slot its worker fills."""

    __slots__ = ("method", "request", "done", "response", "error", "on_done")

    def __init__(
        self, method: str, request: Any, on_done: CallCallback | None = None
    ) -> None:
        self.method = method
        self.request = request
        self.done = threading.Event()
        self.response: Any = None
        self.error: BaseException | None = None
        self.on_done = on_done


class ThreadedTransport(Transport):
    """One bounded queue and worker pool per (node, service)."""

    def __init__(
        self,
        *,
        queue_depth: int = 128,
        workers_per_service: int = 2,
        call_timeout: float = 30.0,
    ) -> None:
        if queue_depth < 1 or workers_per_service < 1:
            raise RpcError("queue_depth and workers_per_service must be >= 1")
        self.queue_depth = queue_depth
        self.workers_per_service = workers_per_service
        self.call_timeout = call_timeout
        self._state_lock = threading.Lock()
        self._bindings: dict[tuple[int, str], tuple[Any, int]] = {}  # guarded-by: _state_lock
        self._queues: dict[tuple[int, str], queue.Queue[_PendingCall | None]] = {}  # guarded-by: _state_lock
        self._threads: list[threading.Thread] = []  # guarded-by: _state_lock
        self._started = False  # guarded-by: _state_lock
        self._closed = False  # guarded-by: _state_lock

    def register(
        self, node_id: int, name: str, service: Any, *, workers: int | None = None
    ) -> None:
        with self._state_lock:
            if self._started:
                raise RpcError("cannot register services on a started transport")
            key = (node_id, name)
            if key in self._bindings:
                raise RpcError(
                    f"service {name!r} already registered on node {node_id}"
                )
            self._bindings[key] = (service, workers or self.workers_per_service)

    def start(self) -> None:
        with self._state_lock:
            if self._started:
                return
            self._started = True
            for (node, name), (service, workers) in sorted(self._bindings.items()):
                q: queue.Queue[_PendingCall | None] = queue.Queue(
                    maxsize=self.queue_depth
                )
                self._queues[(node, name)] = q
                for i in range(workers):
                    thread = threading.Thread(
                        target=self._worker,
                        args=(q, service),
                        name=f"{name}@{node}#{i}",
                        daemon=True,
                    )
                    thread.start()
                    self._threads.append(thread)

    @staticmethod
    def _worker(q: "queue.Queue[_PendingCall | None]", service: Any) -> None:
        while True:
            call = q.get()
            if call is None:
                q.put(None)  # wake sibling workers so the pool drains
                return
            try:
                call.response = service.handle(call.method, call.request)
            except BaseException as exc:  # noqa: BLE001 - relayed to caller
                call.error = exc
            call.done.set()
            if call.on_done is not None:
                call.on_done(call.response, call.error)

    def _enqueue(
        self, dst: int, service: str, call: _PendingCall, timeout: float
    ) -> None:
        # Lock-free reads: a call racing start/shutdown sees either side
        # of the flip — at worst it enqueues onto a draining pool and
        # times out, exactly as a call landing just before shutdown does.
        if not self._started:
            raise RpcError("transport not started")
        if self._closed:
            raise RpcError("transport is shut down")
        q = self._queues.get((dst, service))
        if q is None:
            raise RpcError(f"no service {service!r} on node {dst}")
        try:
            q.put(call, timeout=timeout)
        except queue.Full:
            raise RpcError(
                f"request queue full for {service!r} on node {dst}"
            ) from None

    def call(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int = 0,
    ) -> Any:
        call = _PendingCall(method, request)
        self._enqueue(dst, service, call, self.call_timeout)
        if not call.done.wait(self.call_timeout):
            raise RpcError(
                f"{service}.{method} on node {dst} timed out "
                f"after {self.call_timeout}s"
            )
        if call.error is not None:
            raise call.error
        return call.response

    def call_async(
        self,
        src: int,
        dst: int,
        service: str,
        method: str,
        request: Any,
        request_bytes: int = 0,
        *,
        on_done: CallCallback,
    ) -> None:
        """Enqueue without waiting: the worker thread that executes the
        handler invokes ``on_done`` (pipelined shipping rides on this).
        Enqueue-side failures (unknown service, full queue) raise here
        instead of reaching the callback."""
        self._enqueue(
            dst, service, _PendingCall(method, request, on_done), self.call_timeout
        )

    def shutdown(self) -> None:
        with self._state_lock:
            if not self._started or self._closed:
                self._closed = True
                return
            self._closed = True
            for q in self._queues.values():
                q.put(None)
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=5.0)
