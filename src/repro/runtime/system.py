"""System adapters: what KerA and Kafka each contribute to the runtime.

An adapter owns the system's cores and the system-specific wiring that
every driver used to duplicate: core construction, stream-catalog
fan-out, and (for KerA) the push-replication drive loop and the single
place a :class:`ReplicateRequest` is built from a batch.

Cores are imported lazily inside methods: ``repro.kera`` and
``repro.kafka`` import this package for their drivers, so a module-level
import here would be circular.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.replication.virtual_log import ReplicationBatch
    from repro.runtime.completion import CompletionTracker


class SystemAdapter:
    """One storage system's contribution to a :class:`ClusterRuntime`."""

    #: Adapter name, for diagnostics.
    name: str = "system"
    #: Service name clients send produce/fetch to on broker nodes.
    broker_service: str = "broker"
    #: Node ids the system's cores run on.
    node_ids: list[int]

    def build_cores(self, completion: "CompletionTracker") -> None:
        """Construct the system's cores, wiring each broker's
        ``on_request_complete`` into the runtime's tracker."""
        raise NotImplementedError

    def on_stream_created(self, meta: Any) -> None:
        """Fan a new stream's partitions out to the cores that lead them."""


class KeraSystem(SystemAdapter):
    """KerA: broker + backup core per node, push replication."""

    name = "kera"
    broker_service = "broker"

    def __init__(self, config: Any, *, zero_copy_fetch: bool = False) -> None:
        self.config = config
        self.zero_copy_fetch = zero_copy_fetch
        self.node_ids = list(range(config.num_brokers))
        self.broker_cores: dict[int, Any] = {}
        self.backup_cores: dict[int, Any] = {}

    def build_cores(self, completion: "CompletionTracker") -> None:
        from repro.kera.backup import KeraBackupCore
        from repro.kera.broker import KeraBrokerCore

        config = self.config
        for node in self.node_ids:
            self.broker_cores[node] = KeraBrokerCore(
                broker_id=node,
                nodes=self.node_ids,
                storage_config=config.storage,
                replication_config=config.replication,
                on_request_complete=completion.callback_for(node),
                zero_copy_fetch=self.zero_copy_fetch,
                fanout_cache_bytes=getattr(
                    config, "fanout_cache_bytes", 64 * 1024 * 1024
                ),
            )
            storage_dir = config.storage_dir
            self.backup_cores[node] = KeraBackupCore(
                node_id=node,
                materialize=config.storage.materialize,
                flush_threshold=config.flush_threshold,
                disk_dir=(
                    f"{storage_dir}/node{node}" if storage_dir is not None else None
                ),
                fsync_policy=config.replication.fsync_policy,
                spill=config.replication.spill_sealed,
            )

    def on_stream_created(self, meta: Any) -> None:
        for node in self.node_ids:
            local = meta.streamlets_on(node)
            if local:
                self.broker_cores[node].create_stream(meta.stream_id, local)

    # -- replication ------------------------------------------------------------

    @staticmethod
    def replicate_request(broker_id: int, batch: "ReplicationBatch") -> Any:
        """The wire form of one replication batch — built here and only
        here, for every transport (sim ship loop, synchronous pump,
        threaded shipper, crash repairs).

        Materialized segments ship zero-copy ``frames`` (memoryview
        slices of the already-encoded, placement-stamped segment bytes);
        metadata-only segments ship synthesized meta chunks with
        identical accounting."""
        from repro.replication.manager import wire_chunks
        from repro.kera.messages import ReplicateRequest

        refs = batch.refs
        if refs and refs[0].stored.segment.buffer.materialized:
            return ReplicateRequest(
                src_broker=broker_id,
                vlog_id=batch.vlog_id,
                vseg_id=batch.vseg.vseg_id,
                vseg_capacity=batch.vseg.capacity,
                batch_checksum=batch.vseg.checksum,
                frames=tuple(ref.stored.encoded_view() for ref in refs),
                # The views alias the broker's own segment memory, whose
                # payload CRCs were computed/checked when the bytes entered
                # this process; only a copying transport clears the bit.
                frames_verified=True,
            )
        return ReplicateRequest(
            src_broker=broker_id,
            vlog_id=batch.vlog_id,
            vseg_id=batch.vseg.vseg_id,
            vseg_capacity=batch.vseg.capacity,
            batch_checksum=batch.vseg.checksum,
            chunks=list(wire_chunks(batch)),
        )

    def drive_replication(
        self, broker_id: int, send: Callable[[int, Any], Any]
    ) -> int:
        """Synchronously ship every ready batch of a broker until nothing
        is left: the drive loop of the live drivers (inproc produce path,
        threaded shipper, recovery re-pumps). ``send(backup_node,
        request)`` delivers one replicate RPC; batch completion fires the
        durability callbacks."""
        core = self.broker_cores[broker_id]
        shipped = 0
        while True:
            batches = core.collect_batches()
            if not batches:
                return shipped
            for batch in batches:
                request = self.replicate_request(broker_id, batch)
                for backup_node in batch.backups:
                    send(backup_node, request)
                core.complete_batch(batch)
                shipped += 1


class KafkaSystem(SystemAdapter):
    """Kafka baseline: one broker core per node, pull replication."""

    name = "kafka"
    broker_service = "kafka"

    def __init__(self, config: Any) -> None:
        self.config = config
        self.node_ids = list(range(config.num_brokers))
        self.broker_cores: dict[int, Any] = {}
        #: (follower, leader) -> partitions the follower replicates.
        self.follow_map: dict[tuple[int, int], list[tuple[int, int]]] = {}

    def build_cores(self, completion: "CompletionTracker") -> None:
        from repro.kafka.broker import KafkaBrokerCore

        for node in self.node_ids:
            self.broker_cores[node] = KafkaBrokerCore(
                broker_id=node,
                config=self.config,
                on_request_complete=completion.callback_for(node),
            )

    def followers_of(self, leader: int) -> tuple[int, ...]:
        B = len(self.node_ids)
        return tuple(
            self.node_ids[(leader + 1 + i) % B]
            for i in range(self.config.num_followers)
        )

    def on_stream_created(self, meta: Any) -> None:
        for partition, leader in meta.leaders.items():
            followers = self.followers_of(leader)
            self.broker_cores[leader].add_leader_partition(
                meta.stream_id, partition, followers
            )
            for follower in followers:
                self.broker_cores[follower].add_replica_partition(
                    meta.stream_id, partition
                )
                self.follow_map.setdefault((follower, leader), []).append(
                    (meta.stream_id, partition)
                )
