"""Request-completion tracking shared by every driver.

A broker core acknowledges a produce request by calling its
``on_request_complete(request_id)`` callback once every chunk of the
request is durable. When and *where* that callback fires depends on the
transport: at the same simulated instant a replication batch completes,
inline during a synchronous pump, or on a shipper thread while the
request handler is parked on another thread. This tracker absorbs all
three:

* drivers register a waiter (a zero-argument callable — an event's
  ``succeed``/``set``) per ``(node, request_id)``;
* completions that arrive *before* the waiter registers are remembered,
  so the handler that parks after kicking off replication never misses
  its own ack (in the simulator this happens whenever replication
  finishes within the produce call's own instant; in the threaded mode
  whenever the shipper wins the race).

All methods are thread-safe; waiters are invoked outside the lock.
"""

from __future__ import annotations

import threading
from collections.abc import Callable


class CompletionTracker:
    """(node, request_id) -> waiter, with early-completion memory."""

    __slots__ = ("_lock", "_waiters", "_early")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._waiters: dict[tuple[int, int], Callable[[], None]] = {}
        self._early: set[tuple[int, int]] = set()

    def callback_for(self, node_id: int) -> Callable[[int], None]:
        """The ``on_request_complete`` callback for one node's core."""

        def callback(request_id: int) -> None:
            self.complete(node_id, request_id)

        return callback

    def complete(self, node_id: int, request_id: int) -> None:
        """A request became durable: fire its waiter, or remember it."""
        key = (node_id, request_id)
        with self._lock:
            waiter = self._waiters.pop(key, None)
            if waiter is None:
                self._early.add(key)
        if waiter is not None:
            waiter()

    def register(self, node_id: int, request_id: int, waiter: Callable[[], None]) -> bool:
        """Park ``waiter`` until the request completes.

        Returns ``True`` when the request already completed — the waiter
        is *not* stored and the caller should treat the request as done
        (e.g. succeed its event itself).
        """
        key = (node_id, request_id)
        with self._lock:
            if key in self._early:
                self._early.discard(key)
                return True
            self._waiters[key] = waiter
            return False

    def consume(self, node_id: int, request_id: int) -> bool:
        """Poll-and-clear for synchronous drivers: did the request
        complete (without a registered waiter)?"""
        key = (node_id, request_id)
        with self._lock:
            if key in self._early:
                self._early.discard(key)
                return True
            return False

    def discard(self, node_id: int, request_id: int) -> None:
        """Forget a request entirely: drop its waiter and any remembered
        early completion. The cancellation path for completion-driven
        callers — a request that failed or timed out elsewhere must not
        leave a waiter (or a stale early mark) behind to fire into, or
        collide with, a later request."""
        key = (node_id, request_id)
        with self._lock:
            self._waiters.pop(key, None)
            self._early.discard(key)
