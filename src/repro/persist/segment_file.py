"""Append-only segment files holding verbatim wire frames.

File layout (LogBase-style log-structured storage: append-only files,
sparse index kept separately)::

    *.seg                                  *.idx (sidecar)
    +----------------------------+         +---------------------------+
    | file header (44 bytes)     |         | idx header (12 bytes)     |
    |   magic/version/flags      |         |   magic/version/interval  |
    |   src_broker/vlog/vseg     |         +---------------------------+
    |   base_offset/capacity     |         | entry: chunk_idx, offset  |
    |   header crc32c            |         | entry: chunk_idx, offset  |
    +----------------------------+         | ... (sparse, appended)    |
    | chunk frame (wire bytes)   |         +---------------------------+
    | chunk frame                |
    | ...                        |

Chunk frames are the exact bytes shipped over replication — the chunk
header is self-describing (``payload_len``) and carries its own payload
CRC, so the flush path appends flushed buffer regions verbatim (zero
re-encode) and recovery can scan, validate, and truncate a torn tail
without any per-file metadata beyond the fixed header.

The ``*.idx`` sidecar maps every Nth chunk index to its file offset for
O(log n) point lookup. It is advisory: appended without fsync, validated
on open, and rebuilt from a scan whenever missing, stale, or corrupt.
"""

from __future__ import annotations

import os
import struct
from bisect import bisect_right
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.wire.views import ChunkView

from repro.common.checksum import crc32c
from repro.common.errors import StorageError, WireFormatError
from repro.storage.index import SegmentOffsetIndex
from repro.wire.chunk import CHUNK_HEADER_SIZE, CHUNK_MAGIC, Chunk, decode_chunk

__all__ = [
    "SEG_FILE_MAGIC",
    "SEG_FILE_VERSION",
    "SEG_FILE_HEADER_SIZE",
    "DEFAULT_INDEX_INTERVAL",
    "SegmentFileMeta",
    "SegmentFileWriter",
    "SegmentFileReader",
    "RecoveredSegmentFile",
    "recover_segment_file",
]

SEG_FILE_MAGIC = 0x564C_5347  # "VLSG" — virtual-log segment
SEG_FILE_VERSION = 1
#: magic, version, flags, src_broker, vlog_id, vseg_id, base_offset,
#: capacity, header_crc (crc32c over all preceding header bytes).
_SEG_HEADER = struct.Struct("<IHHiiqqqI")
SEG_FILE_HEADER_SIZE = _SEG_HEADER.size

IDX_FILE_MAGIC = 0x564C_4958  # "VLIX"
IDX_FILE_VERSION = 1
#: magic, version, reserved, index_interval (bytes of frames per entry).
_IDX_HEADER = struct.Struct("<IHHI")
#: chunk_index, reserved, file_offset.
_IDX_ENTRY = struct.Struct("<IIq")

#: Emit one index entry per ~64 KiB of frame bytes by default.
DEFAULT_INDEX_INTERVAL = 64 * 1024

#: ``payload_len`` field offset within a chunk header (see repro.wire.chunk).
_PAYLOAD_LEN = struct.Struct("<I")
_PAYLOAD_LEN_OFFSET = 32
_CHUNK_MAGIC_FIELD = struct.Struct("<H")


@dataclass(frozen=True, slots=True)
class SegmentFileMeta:
    """Identity stamped into a segment file's fixed header."""

    src_broker: int
    vlog_id: int
    vseg_id: int
    capacity: int
    base_offset: int = 0

    def pack(self) -> bytes:
        head = _SEG_HEADER.pack(
            SEG_FILE_MAGIC,
            SEG_FILE_VERSION,
            0,
            self.src_broker,
            self.vlog_id,
            self.vseg_id,
            self.base_offset,
            self.capacity,
            0,
        )
        body = head[: SEG_FILE_HEADER_SIZE - 4]
        return body + struct.pack("<I", crc32c(body))

    @classmethod
    def unpack(cls, raw: bytes | memoryview) -> SegmentFileMeta:
        if len(raw) < SEG_FILE_HEADER_SIZE:
            raise StorageError(
                f"segment file header truncated: {len(raw)} < {SEG_FILE_HEADER_SIZE}"
            )
        magic, version, _flags, src, vlog, vseg, base, cap, crc = _SEG_HEADER.unpack_from(
            raw, 0
        )
        if magic != SEG_FILE_MAGIC:
            raise StorageError(f"bad segment file magic {magic:#010x}")
        if version != SEG_FILE_VERSION:
            raise StorageError(f"unsupported segment file version {version}")
        actual = crc32c(bytes(raw[: SEG_FILE_HEADER_SIZE - 4]))
        if actual != crc:
            raise StorageError(
                f"segment file header crc mismatch: stored {crc:#010x}, computed {actual:#010x}"
            )
        return cls(
            src_broker=src, vlog_id=vlog, vseg_id=vseg, capacity=cap, base_offset=base
        )


def _frame_length(view: memoryview, offset: int) -> int:
    """Length of the frame at ``offset``; raises on a malformed header."""
    if offset + CHUNK_HEADER_SIZE > len(view):
        raise StorageError(f"flush region holds a partial chunk header at {offset}")
    (magic,) = _CHUNK_MAGIC_FIELD.unpack_from(view, offset)
    if magic != CHUNK_MAGIC:
        raise StorageError(f"flush region is not frame-aligned at {offset}")
    (payload_len,) = _PAYLOAD_LEN.unpack_from(view, offset + _PAYLOAD_LEN_OFFSET)
    length = CHUNK_HEADER_SIZE + payload_len
    if offset + length > len(view):
        raise StorageError(f"flush region holds a partial chunk payload at {offset}")
    return length


class SegmentFileWriter:
    """Appends whole wire frames to a fresh ``*.seg`` + ``*.idx`` pair.

    Flush regions always end on frame boundaries (the backup buffer only
    ever appends whole frames), so :meth:`append` walks the region's
    self-describing chunk headers to keep the chunk count and the sparse
    index current without decoding payloads. ``fsync`` is a separate,
    policy-driven step (:meth:`sync`) — the data file is synced, the
    index sidecar is not (it is rebuilt from a scan on recovery anyway).
    """

    __slots__ = (
        "path",
        "idx_path",
        "meta",
        "index_interval",
        "_file",
        "_idx",
        "_frame_bytes",
        "_chunk_count",
        "_since_index",
        "_closed",
    )

    def __init__(
        self,
        path: str | Path,
        meta: SegmentFileMeta,
        *,
        index_interval: int = DEFAULT_INDEX_INTERVAL,
    ) -> None:
        if index_interval <= 0:
            raise StorageError("index interval must be positive")
        self.path = Path(path)
        self.idx_path = self.path.with_suffix(".idx")
        self.meta = meta
        self.index_interval = index_interval
        self._file: IO[bytes] = open(self.path, "wb")
        self._file.write(meta.pack())
        self._idx: IO[bytes] = open(self.idx_path, "wb")
        self._idx.write(
            _IDX_HEADER.pack(IDX_FILE_MAGIC, IDX_FILE_VERSION, 0, index_interval)
        )
        self._frame_bytes = 0
        self._chunk_count = 0
        self._since_index = 0
        self._closed = False

    @property
    def frame_bytes(self) -> int:
        """Bytes of chunk frames appended (excluding the file header)."""
        return self._frame_bytes

    @property
    def chunk_count(self) -> int:
        return self._chunk_count

    @property
    def file_bytes(self) -> int:
        return SEG_FILE_HEADER_SIZE + self._frame_bytes

    @property
    def closed(self) -> bool:
        return self._closed

    def append(self, region: bytes | bytearray | memoryview) -> int:
        """Append a frame-aligned region; returns bytes written."""
        if self._closed:
            raise StorageError(f"append on closed segment file {self.path.name}")
        view = memoryview(region)
        offset = 0
        while offset < len(view):
            length = _frame_length(view, offset)
            if self._chunk_count == 0 or self._since_index >= self.index_interval:
                file_offset = SEG_FILE_HEADER_SIZE + self._frame_bytes + offset
                self._idx.write(_IDX_ENTRY.pack(self._chunk_count, 0, file_offset))
                self._since_index = 0
            self._since_index += length
            self._chunk_count += 1
            offset += length
        self._file.write(view)
        self._frame_bytes += len(view)
        return len(view)

    def flush(self) -> None:
        """Push buffered writes to the OS (no fsync)."""
        self._file.flush()
        self._idx.flush()

    def sync(self) -> None:
        """``fsync`` the data file (the index sidecar is rebuildable)."""
        self._file.flush()
        os.fsync(self._file.fileno())
        self._idx.flush()

    def close(self, *, sync: bool = False) -> None:
        if self._closed:
            return
        if sync:
            self.sync()
        else:
            self.flush()
        self._file.close()
        self._idx.close()
        self._closed = True


def _load_index(
    idx_path: Path, frame_end: int
) -> tuple[list[tuple[int, int]], int] | None:
    """Load and validate a sidecar; ``None`` means rebuild from a scan.

    Returns ``(entries, index_interval)`` with entries as
    ``(chunk_index, file_offset)`` pairs. Entries pointing past
    ``frame_end`` (a tail that was truncated by recovery) invalidate the
    sidecar rather than being silently dropped — positions before the
    torn tail might still disagree with the file.
    """
    try:
        raw = idx_path.read_bytes()
    except OSError:
        return None
    if len(raw) < _IDX_HEADER.size:
        return None
    magic, version, _reserved, interval = _IDX_HEADER.unpack_from(raw, 0)
    if magic != IDX_FILE_MAGIC or version != IDX_FILE_VERSION or interval <= 0:
        return None
    body = raw[_IDX_HEADER.size :]
    if len(body) % _IDX_ENTRY.size != 0:
        return None
    entries: list[tuple[int, int]] = []
    prev_chunk, prev_off = -1, -1
    for off in range(0, len(body), _IDX_ENTRY.size):
        chunk_index, _reserved2, file_offset = _IDX_ENTRY.unpack_from(body, off)
        if chunk_index <= prev_chunk or file_offset <= prev_off:
            return None
        if file_offset < SEG_FILE_HEADER_SIZE or file_offset >= frame_end:
            return None
        entries.append((chunk_index, file_offset))
        prev_chunk, prev_off = chunk_index, file_offset
    if not entries and frame_end > SEG_FILE_HEADER_SIZE:
        return None
    return entries, interval


def _scan_index(
    data: memoryview, *, index_interval: int
) -> tuple[list[tuple[int, int]], int]:
    """Rebuild sparse index entries by walking frame headers.

    Mirrors the writer's emission rule exactly, so a scan of an intact
    file reproduces the sidecar byte for byte. Returns ``(entries,
    chunk_count)``; ``data`` must start at the first frame.
    """
    entries: list[tuple[int, int]] = []
    offset = 0
    chunk_count = 0
    since = 0
    while offset < len(data):
        length = _frame_length(data, offset)
        if chunk_count == 0 or since >= index_interval:
            entries.append((chunk_count, SEG_FILE_HEADER_SIZE + offset))
            since = 0
        since += length
        chunk_count += 1
        offset += length
    return entries, chunk_count


class SegmentFileReader:
    """Random and sequential access over one recovered ``*.seg`` file.

    The file is read into memory once at :meth:`open` (virtual segments
    are bounded by their configured capacity, a few MiB). :meth:`chunk_at`
    uses the sparse index for O(log n) point lookup: bisect to the floor
    entry, then walk self-describing headers forward.
    """

    __slots__ = ("path", "meta", "_data", "_index", "_chunk_count", "_offset_index")

    def __init__(
        self,
        path: Path,
        meta: SegmentFileMeta,
        data: bytes,
        index: list[tuple[int, int]],
        chunk_count: int,
    ) -> None:
        self.path = path
        self.meta = meta
        self._data = data
        self._index = index
        self._chunk_count = chunk_count
        self._offset_index: SegmentOffsetIndex | None = None

    @classmethod
    def open(
        cls, path: str | Path, *, index_interval: int = DEFAULT_INDEX_INTERVAL
    ) -> SegmentFileReader:
        """Open a segment file, loading (or rebuilding) its sparse index.

        Trusts frame structure — run :func:`recover_segment_file` first
        for files that may have a torn tail.
        """
        seg_path = Path(path)
        raw = seg_path.read_bytes()
        meta = SegmentFileMeta.unpack(raw)
        data = raw[SEG_FILE_HEADER_SIZE:]
        loaded = _load_index(seg_path.with_suffix(".idx"), len(raw))
        if loaded is not None:
            entries, interval = loaded
            _, chunk_count = _scan_index(memoryview(data), index_interval=interval)
        else:
            entries, chunk_count = _scan_index(
                memoryview(data), index_interval=index_interval
            )
        return cls(seg_path, meta, data, entries, chunk_count)

    @property
    def frame_bytes(self) -> int:
        return len(self._data)

    @property
    def chunk_count(self) -> int:
        return self._chunk_count

    @property
    def index_entries(self) -> list[tuple[int, int]]:
        return list(self._index)

    def frame_data(self) -> memoryview:
        """The raw back-to-back chunk frames (no file header)."""
        return memoryview(self._data)

    def iter_chunks(self, *, verify: bool = True) -> Iterator[Chunk]:
        offset = 0
        view = memoryview(self._data)
        while offset < len(view):
            chunk, offset = decode_chunk(view, offset, verify=verify)
            yield chunk

    def chunks(self, *, verify: bool = True) -> list[Chunk]:
        return list(self.iter_chunks(verify=verify))

    def chunk_at(self, index: int, *, verify: bool = True) -> Chunk:
        """Decode the ``index``-th chunk via the sparse index."""
        if not 0 <= index < self._chunk_count:
            raise StorageError(
                f"chunk index {index} out of range [0, {self._chunk_count})"
            )
        view = memoryview(self._data)
        pos = bisect_right(self._index, (index, 2**63)) - 1
        if pos >= 0:
            current, file_offset = self._index[pos]
            offset = file_offset - SEG_FILE_HEADER_SIZE
        else:  # no index entries (empty sidecar on a tiny file)
            current, offset = 0, 0
        while current < index:
            offset += _frame_length(view, offset)
            current += 1
        chunk, _ = decode_chunk(view, offset, verify=verify)
        return chunk

    # -- positioned reads (reader plane over recovered bytes) -----------------

    def offset_index(self) -> SegmentOffsetIndex:
        """The dense record offset index, rebuilt from the loaded frames.

        This is the same per-segment index the broker maintains
        incrementally at append time (:class:`SegmentOffsetIndex`),
        reconstructed here by a header-only scan so segments recovered
        from disk answer positioned reads without replay. Built once,
        memoized.
        """
        if self._offset_index is None:
            self._offset_index = SegmentOffsetIndex.rebuild(memoryview(self._data))
        return self._offset_index

    @property
    def record_count(self) -> int:
        return self.offset_index().record_count

    def read_at(self, record_offset: int) -> memoryview:
        """The encoded frame containing ``record_offset``, zero-copy.

        O(log n) bisect through the rebuilt offset index; the returned
        view aliases the loaded file bytes (frame-aligned, verbatim).
        """
        index = self.offset_index()
        start, end = index.frame_range(index.locate(record_offset))
        return memoryview(self._data)[start:end]

    def view_at(self, record_offset: int) -> "ChunkView":
        """Lazy decode view over the frame containing ``record_offset``.

        ``verified=False``: these bytes crossed an address-space boundary
        (the platter), so the caller re-earns the CRC bit via
        :meth:`~repro.wire.views.ChunkView.verify_payload`.
        """
        from repro.wire.views import ChunkView

        return ChunkView(self.read_at(record_offset))


@dataclass(frozen=True, slots=True)
class RecoveredSegmentFile:
    """Outcome of torn-tail recovery on one segment file."""

    path: Path
    meta: SegmentFileMeta
    chunk_count: int
    frame_bytes: int
    truncated_bytes: int
    index_rebuilt: bool


def recover_segment_file(
    path: str | Path, *, index_interval: int = DEFAULT_INDEX_INTERVAL
) -> RecoveredSegmentFile:
    """Scan, CRC-validate, truncate a torn tail, and rebuild the index.

    The recovery state machine on open::

        read header ──bad magic/version/crc──▶ StorageError (file unusable)
              │ok
              ▼
        scan frames, CRC-validating each payload
              │
              ├─ all frames valid ──▶ keep file as-is
              │
              └─ torn/corrupt frame ──▶ truncate file at last good frame
              ▼
        sidecar matches scan? ──no──▶ rewrite *.idx from the scan

    A file whose *fixed header* is unreadable cannot even be attributed
    to a virtual segment; that raises :class:`StorageError` and the
    caller (``SegmentPersistence.load``) skips it. Everything after a
    valid header degrades gracefully: the good frame prefix survives,
    the torn tail is cut, and the sidecar is regenerated.
    """
    seg_path = Path(path)
    raw = seg_path.read_bytes()
    meta = SegmentFileMeta.unpack(raw)

    view = memoryview(raw)
    offset = SEG_FILE_HEADER_SIZE
    chunk_count = 0
    good_end = offset
    while offset < len(view):
        try:
            _, offset = decode_chunk(view, offset, verify=True)
        except WireFormatError:  # includes ChecksumError: torn or corrupt tail
            break
        good_end = offset
        chunk_count += 1

    truncated = len(raw) - good_end
    if truncated:
        with open(seg_path, "r+b") as fh:
            fh.truncate(good_end)
            fh.flush()
            os.fsync(fh.fileno())
        view = memoryview(raw)[:good_end]

    data = memoryview(raw)[SEG_FILE_HEADER_SIZE:good_end]
    idx_path = seg_path.with_suffix(".idx")
    loaded = _load_index(idx_path, good_end)
    if loaded is not None:
        interval = loaded[1]
        expected, _ = _scan_index(data, index_interval=interval)
    else:
        interval = index_interval
        expected, _ = _scan_index(data, index_interval=index_interval)
    index_rebuilt = loaded is None or loaded[0] != expected
    if index_rebuilt:
        with open(idx_path, "wb") as ih:
            ih.write(_IDX_HEADER.pack(IDX_FILE_MAGIC, IDX_FILE_VERSION, 0, interval))
            for chunk_index, file_offset in expected:
                ih.write(_IDX_ENTRY.pack(chunk_index, 0, file_offset))

    return RecoveredSegmentFile(
        path=seg_path,
        meta=meta,
        chunk_count=chunk_count,
        frame_bytes=good_end - SEG_FILE_HEADER_SIZE,
        truncated_bytes=truncated,
        index_rebuilt=index_rebuilt,
    )
