"""One backup node's on-disk state: epoch directories of segment files.

Layout under the node's root (``persist_dir/node<N>``)::

    epoch-0001/              <- a previous incarnation's files (read at load)
        b0_v1_s3.seg         <- frames of (src_broker=0, vlog=1, vseg=3)
        b0_v1_s3.idx
    epoch-0002/              <- this incarnation's write epoch (lazy)
        ...

Virtual-segment ids restart from zero on every cluster incarnation, so
files from different runs may share a name; epoch directories keep the
generations apart. The write epoch is created lazily on the first flush
(``max existing + 1``), which also keeps parent-side cores in process
mode — which never see replication traffic — from littering the tree.

All write-path methods (``persist_region``, ``tick``, ``sync_all``) are
called from a single thread: the flusher thread in the live drivers, or
the caller's thread in inproc mode. Stats reads are int snapshots and
need no coordination.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol

from repro.common.errors import StorageError, WireFormatError
from repro.storage.index import SegmentOffsetIndex
from repro.wire.buffers import AppendBuffer
from repro.wire.chunk import Chunk
from repro.persist.policy import FlushMode, FlushPolicy
from repro.persist.segment_file import (
    DEFAULT_INDEX_INTERVAL,
    SEG_FILE_HEADER_SIZE,
    SegmentFileMeta,
    SegmentFileReader,
    SegmentFileWriter,
    recover_segment_file,
)

__all__ = ["SegmentPersistence", "DiskLoadReport", "LoadedSegment"]

_EPOCH_PREFIX = "epoch-"
_CONSUMED_SUFFIX = "-consumed"


class PersistableSegment(Protocol):
    """What the durable tier needs from a replicated segment.

    Satisfied structurally by
    :class:`repro.replication.backup_store.ReplicatedSegment`; declared
    as a protocol so this package never imports the replication layer.
    """

    src_broker: int
    vlog_id: int
    vseg_id: int
    capacity: int
    sealed: bool
    buffer: AppendBuffer

    @property
    def unflushed_bytes(self) -> int: ...

    @property
    def spilled(self) -> bool: ...

    def spill(self, reader: SegmentFileReader) -> int: ...


@dataclass(frozen=True, slots=True)
class LoadedSegment:
    """One virtual segment re-ingested from disk at restart."""

    meta: SegmentFileMeta
    path: Path
    chunks: list[Chunk]
    frame_bytes: int
    truncated_bytes: int
    index_rebuilt: bool
    #: Dense record offset index rebuilt over the recovered frames, so a
    #: loaded segment answers positioned reads before any replay.
    index: SegmentOffsetIndex


@dataclass(slots=True)
class DiskLoadReport:
    """Outcome of :meth:`SegmentPersistence.load`."""

    segments: list[LoadedSegment] = field(default_factory=list)
    epochs_loaded: list[str] = field(default_factory=list)
    files_scanned: int = 0
    files_skipped: int = 0
    files_superseded: int = 0
    chunks_loaded: int = 0
    bytes_truncated: int = 0
    indexes_rebuilt: int = 0


def _epoch_number(name: str) -> int | None:
    if not name.startswith(_EPOCH_PREFIX) or name.endswith(_CONSUMED_SUFFIX):
        return None
    try:
        return int(name[len(_EPOCH_PREFIX) :])
    except ValueError:
        return None


class SegmentPersistence:
    """Owns segment files, fsync policy, and spill for one backup node."""

    def __init__(
        self,
        root: str | Path,
        *,
        policy: FlushPolicy | None = None,
        spill: bool = False,
        index_interval: int = DEFAULT_INDEX_INTERVAL,
    ) -> None:
        self.root = Path(root)
        self.policy = policy if policy is not None else FlushPolicy(FlushMode.NEVER)
        self.spill = spill
        self.index_interval = index_interval
        self._epoch_dir: Path | None = None
        self._writers: dict[tuple[int, int, int], SegmentFileWriter] = {}
        self._spilled = 0
        self._unsynced = 0
        self._last_sync = time.monotonic()
        self._closed = False

    # -- write epoch -----------------------------------------------------------

    def epoch_dir(self) -> Path:
        """This incarnation's write directory, created on first use."""
        if self._epoch_dir is None:
            self.root.mkdir(parents=True, exist_ok=True)
            numbers = [
                n
                for entry in self.root.iterdir()
                if (n := _epoch_number(entry.name)) is not None
            ]
            epoch = max(numbers, default=0) + 1
            self._epoch_dir = self.root / f"{_EPOCH_PREFIX}{epoch:04d}"
            self._epoch_dir.mkdir()
        return self._epoch_dir

    def path_for(self, src_broker: int, vlog_id: int, vseg_id: int) -> Path:
        return self.epoch_dir() / f"b{src_broker}_v{vlog_id}_s{vseg_id}.seg"

    # -- flush path ------------------------------------------------------------

    def _writer_for(self, segment: PersistableSegment) -> SegmentFileWriter:
        key = (segment.src_broker, segment.vlog_id, segment.vseg_id)
        writer = self._writers.get(key)
        if writer is None:
            meta = SegmentFileMeta(
                src_broker=segment.src_broker,
                vlog_id=segment.vlog_id,
                vseg_id=segment.vseg_id,
                capacity=segment.capacity,
            )
            writer = SegmentFileWriter(
                self.path_for(*key), meta, index_interval=self.index_interval
            )
            self._writers[key] = writer
        return writer

    def persist_region(
        self, segment: PersistableSegment, start: int, nbytes: int
    ) -> Path:
        """Append a flushed buffer region verbatim; apply the fsync policy.

        Regions must arrive in order per segment (the flusher preserves
        submission order). A zero-byte region is a pure policy/spill
        checkpoint — emitted when a segment seals with nothing left to
        flush.
        """
        if self._closed:
            raise StorageError("persist on closed segment persistence")
        writer = self._writer_for(segment)
        if nbytes > 0:
            if start != writer.frame_bytes:
                raise StorageError(
                    f"out-of-order flush for {writer.path.name}: region starts at "
                    f"{start}, file holds {writer.frame_bytes} frame bytes"
                )
            writer.append(segment.buffer.view(start, nbytes))
            self._unsynced += nbytes
            if self.policy.due_after_write(self._unsynced):
                self.sync_all()
        if (
            self.spill
            and segment.sealed
            and not segment.spilled
            and segment.unflushed_bytes == 0
        ):
            self._spill(segment, writer)
        return writer.path

    def _spill(self, segment: PersistableSegment, writer: SegmentFileWriter) -> None:
        """Hand the segment over to its file: sync, reopen as a reader.

        The disk copy becomes the only copy, so it is synced regardless
        of the fsync policy — spill must never lose acked data.
        """
        key = (segment.src_broker, segment.vlog_id, segment.vseg_id)
        writer.close(sync=True)
        del self._writers[key]
        reader = SegmentFileReader.open(writer.path, index_interval=self.index_interval)
        segment.spill(reader)
        self._spilled += 1

    def tick(self) -> None:
        """Idle-time hook: time-batched fsync for ``interval:<ms>``."""
        if self._closed or self.policy.mode is not FlushMode.INTERVAL:
            return
        if self.policy.due_on_tick(time.monotonic() - self._last_sync, self._unsynced):
            self.sync_all()

    def sync_all(self) -> None:
        """``fsync`` every open segment file."""
        for writer in self._writers.values():
            writer.sync()
        self._unsynced = 0
        self._last_sync = time.monotonic()

    # -- read path -------------------------------------------------------------

    def read_chunks(
        self, src_broker: int, vlog_id: int, vseg_id: int, *, verify: bool = True
    ) -> list[Chunk]:
        """Decode one persisted segment's chunks from its file."""
        key = (src_broker, vlog_id, vseg_id)
        writer = self._writers.get(key)
        if writer is not None:
            writer.flush()
        path = self.path_for(*key)
        if not path.exists():
            raise StorageError(f"no persisted segment file {path.name}")
        reader = SegmentFileReader.open(path, index_interval=self.index_interval)
        return reader.chunks(verify=verify)

    def load(self, *, parallel: int = 4) -> DiskLoadReport:
        """Re-ingest prior incarnations' segment files, in parallel.

        Every non-consumed epoch directory other than this incarnation's
        write epoch is scanned; each file goes through torn-tail
        recovery (:func:`recover_segment_file`) on a worker thread, then
        decodes its chunks. When generations collide — the same (source
        broker, virtual log, virtual segment) in several epochs — the
        newest epoch wins: a restore replays older data through the
        cluster, so later epochs supersede earlier ones.
        """
        report = DiskLoadReport()
        if not self.root.is_dir():
            return report
        epochs = sorted(
            (n, entry)
            for entry in self.root.iterdir()
            if (n := _epoch_number(entry.name)) is not None
            and entry != self._epoch_dir
        )
        # Newest epoch first so the first file seen for a key wins.
        chosen: dict[tuple[int, int, int], Path] = {}
        for _, epoch_path in reversed(epochs):
            loaded_any = False
            for seg_path in sorted(epoch_path.glob("*.seg")):
                report.files_scanned += 1
                try:
                    with open(seg_path, "rb") as fh:
                        meta = SegmentFileMeta.unpack(fh.read(SEG_FILE_HEADER_SIZE))
                except (StorageError, OSError):
                    report.files_skipped += 1
                    continue
                key = (meta.src_broker, meta.vlog_id, meta.vseg_id)
                if key in chosen:
                    report.files_superseded += 1
                    continue
                chosen[key] = seg_path
                loaded_any = True
            if loaded_any:
                report.epochs_loaded.append(epoch_path.name)
        report.epochs_loaded.sort()

        def _load_one(seg_path: Path) -> LoadedSegment | None:
            try:
                recovered = recover_segment_file(
                    seg_path, index_interval=self.index_interval
                )
                reader = SegmentFileReader.open(
                    seg_path, index_interval=self.index_interval
                )
                # recover_segment_file validated the bytes it read — but
                # the reader re-reads the file, and that second crossing
                # re-earns its own CRC check (boundary discipline, A008):
                # a torn sector or concurrent truncation between the two
                # reads must surface here, not as silent corruption.
                chunks = reader.chunks(verify=True)
            except (StorageError, WireFormatError, OSError):
                return None
            return LoadedSegment(
                meta=recovered.meta,
                path=seg_path,
                chunks=chunks,
                frame_bytes=recovered.frame_bytes,
                truncated_bytes=recovered.truncated_bytes,
                index_rebuilt=recovered.index_rebuilt,
                index=reader.offset_index(),
            )

        paths = [chosen[key] for key in sorted(chosen)]
        if parallel > 1 and len(paths) > 1:
            with ThreadPoolExecutor(max_workers=parallel) as pool:
                results = list(pool.map(_load_one, paths))
        else:
            results = [_load_one(p) for p in paths]
        for loaded in results:
            if loaded is None:
                report.files_skipped += 1
                continue
            report.segments.append(loaded)
            report.chunks_loaded += len(loaded.chunks)
            report.bytes_truncated += loaded.truncated_bytes
            report.indexes_rebuilt += int(loaded.index_rebuilt)
        return report

    def retire_loaded_epochs(self, report: DiskLoadReport) -> None:
        """Mark loaded epochs consumed (after their data was replayed and
        re-persisted by the new incarnation) so later restarts skip them."""
        for name in report.epochs_loaded:
            path = self.root / name
            if path.is_dir():
                path.rename(self.root / f"{name}{_CONSUMED_SUFFIX}")

    # -- lifecycle / stats -----------------------------------------------------

    def close(self, *, sync: bool | None = None) -> None:
        """Close open writers. ``sync`` defaults to the policy's intent:
        any policy except ``never`` syncs on a clean close."""
        if self._closed:
            return
        do_sync = sync if sync is not None else self.policy.mode is not FlushMode.NEVER
        for writer in self._writers.values():
            writer.close(sync=do_sync)
        self._writers.clear()
        self._closed = True

    @property
    def segments_on_disk(self) -> int:
        """Segment files this incarnation has written (open + spilled)."""
        return len(self._writers) + self._spilled

    @property
    def spilled_segments(self) -> int:
        return self._spilled

    @property
    def unsynced_bytes(self) -> int:
        return self._unsynced
