"""Fsync policy for the durable backup tier.

Flush (write to the file) and sync (``fsync`` to the platter) are
separate events. The backup always *writes* flushed regions promptly so
the OS page cache holds them; the policy decides when to pay for an
``fsync``:

===============  =====================================================
``never``        OS decides; fastest, loses the page cache on power
                 failure (but not on process crash).
``interval:<ms>``  a time-batched sync every ``<ms>`` milliseconds,
                 driven by the flusher thread's idle tick.
``bytes:<n>``    sync once ``<n>`` unsynced bytes accumulate
                 (``every_n_bytes`` in the issue/paper phrasing).
``always``       sync after every flushed region; slowest, no window.
===============  =====================================================

The policy object is pure — it decides, the store acts — so it can be
unit-tested without a filesystem.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["FlushMode", "FlushPolicy"]


class FlushMode(enum.Enum):
    """When the durable tier calls ``fsync``."""

    NEVER = "never"
    INTERVAL = "interval"
    EVERY_N_BYTES = "bytes"
    ALWAYS = "always"


@dataclass(frozen=True, slots=True)
class FlushPolicy:
    """Parsed fsync policy; construct via :meth:`parse`."""

    mode: FlushMode
    interval_s: float = 0.0
    every_bytes: int = 0

    @classmethod
    def parse(cls, spec: str) -> FlushPolicy:
        """Parse ``never`` / ``always`` / ``interval:<ms>`` / ``bytes:<n>``.

        ``every_n_bytes:<n>`` is accepted as an alias for ``bytes:<n>``.
        """
        head, _, arg = spec.strip().partition(":")
        head = head.lower()
        if head == FlushMode.NEVER.value:
            if arg:
                raise ValueError(f"fsync policy 'never' takes no argument: {spec!r}")
            return cls(FlushMode.NEVER)
        if head == FlushMode.ALWAYS.value:
            if arg:
                raise ValueError(f"fsync policy 'always' takes no argument: {spec!r}")
            return cls(FlushMode.ALWAYS)
        if head == FlushMode.INTERVAL.value:
            try:
                millis = float(arg)
            except ValueError:
                raise ValueError(f"fsync policy needs interval:<ms>: {spec!r}") from None
            if millis <= 0:
                raise ValueError(f"fsync interval must be positive: {spec!r}")
            return cls(FlushMode.INTERVAL, interval_s=millis / 1000.0)
        if head in (FlushMode.EVERY_N_BYTES.value, "every_n_bytes"):
            try:
                nbytes = int(arg)
            except ValueError:
                raise ValueError(f"fsync policy needs bytes:<n>: {spec!r}") from None
            if nbytes <= 0:
                raise ValueError(f"fsync byte threshold must be positive: {spec!r}")
            return cls(FlushMode.EVERY_N_BYTES, every_bytes=nbytes)
        raise ValueError(
            f"unknown fsync policy {spec!r} "
            "(expected never | always | interval:<ms> | bytes:<n>)"
        )

    @property
    def sync_on_write(self) -> bool:
        return self.mode is FlushMode.ALWAYS

    def due_after_write(self, unsynced_bytes: int) -> bool:
        """Should the store sync right after appending a region?"""
        if self.mode is FlushMode.ALWAYS:
            return True
        if self.mode is FlushMode.EVERY_N_BYTES:
            return unsynced_bytes >= self.every_bytes
        return False

    def due_on_tick(self, elapsed_s: float, unsynced_bytes: int) -> bool:
        """Should the flusher's idle tick sync accumulated writes?"""
        if self.mode is FlushMode.INTERVAL:
            return unsynced_bytes > 0 and elapsed_s >= self.interval_s
        return False

    def spec(self) -> str:
        """Round-trippable textual form (``parse(p.spec()) == p``)."""
        if self.mode is FlushMode.INTERVAL:
            return f"interval:{self.interval_s * 1000.0:g}"
        if self.mode is FlushMode.EVERY_N_BYTES:
            return f"bytes:{self.every_bytes}"
        return self.mode.value
