"""Per-backup flusher thread: ack from buffer, flush async.

The paper's backups acknowledge replication from memory and write to
disk asynchronously (Section III). :class:`BackupFlusher` is that
decoupling point for the live drivers: the backup service thread
:meth:`submit`\\ s flush work and returns to acking immediately; this
thread drains the queue into the persistence layer. The distance
between the two — bytes submitted but not yet written — is exported as
the ``flush_lag_bytes`` gauge, the direct measure of how much acked
data a crash of the *machine* (not just the process) could lose under
a relaxed fsync policy.

The flusher also drives time-based fsync batching: when the queue goes
idle it invokes ``on_tick`` so an ``interval:<ms>`` policy can sync
accumulated writes even with no new traffic.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable
from typing import Generic, TypeVar

from repro.common.metrics import Gauge

__all__ = ["BackupFlusher"]

W = TypeVar("W")

#: How long the flusher sleeps when idle before running ``on_tick``.
_IDLE_WAIT_S = 0.02


class BackupFlusher(Generic[W]):
    """Dedicated thread draining flush work into a persist callable.

    ``persist`` is invoked with each submitted work item, in submission
    order, on this thread only — so the persistence layer below never
    needs its own locking for the write path. A persist failure is
    latched on :attr:`error` and re-raised to the next caller that
    checks in (submit/drain), rather than silently dropping durability.
    """

    def __init__(
        self,
        persist: Callable[[W], object],
        *,
        name: str = "backup-flusher",
        on_tick: Callable[[], None] | None = None,
    ) -> None:
        self._persist = persist
        self._on_tick = on_tick
        self._queue: deque[tuple[W, int]] = deque()
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._lag = Gauge()
        self._stopping = False
        self._inflight = False
        self.error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    @property
    def flush_lag_bytes(self) -> int:
        """Bytes acked to the replica path but not yet written to disk."""
        return self._lag.value

    def check(self) -> None:
        """Re-raise a latched persist failure on the caller's thread."""
        if self.error is not None:
            raise RuntimeError("backup flusher failed") from self.error

    def submit(self, work: W, nbytes: int) -> None:
        """Queue flush work; returns immediately (the ack path calls this)."""
        self.check()
        with self._work_ready:
            if self._stopping:
                raise RuntimeError("submit on stopped backup flusher")
            self._queue.append((work, nbytes))
            self._lag.add(nbytes)
            self._work_ready.notify()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until the queue is drained; returns False on timeout."""
        with self._idle:
            ok = self._idle.wait_for(
                lambda: (not self._queue and not self._inflight) or self.error is not None,
                timeout=timeout,
            )
        self.check()
        return ok

    def stop(self, *, drain: bool = True) -> None:
        """Stop the thread; with ``drain`` (default) finish queued work first."""
        with self._work_ready:
            if not drain:
                for _, nbytes in self._queue:
                    self._lag.add(-nbytes)
                self._queue.clear()
            self._stopping = True
            self._work_ready.notify_all()
        self._thread.join()

    def _run(self) -> None:
        while True:
            item: tuple[W, int] | None = None
            with self._work_ready:
                while not self._queue and not self._stopping:
                    if not self._work_ready.wait(timeout=_IDLE_WAIT_S):
                        break  # fall through to the idle tick
                if self._queue:
                    item = self._queue.popleft()
                    self._inflight = True
                elif self._stopping:
                    return
            try:
                if item is None:
                    if self._on_tick is not None:
                        self._on_tick()
                    continue
                self._persist(item[0])
            except BaseException as exc:  # noqa: BLE001 -- latched and re-raised on the submitting thread; the flusher must not die silently mid-queue.
                with self._work_ready:
                    self.error = exc
                    if item is not None:
                        self._lag.add(-item[1])
                        self._inflight = False
                    for _, pending in self._queue:
                        self._lag.add(-pending)
                    self._queue.clear()
                    self._idle.notify_all()
                return
            with self._work_ready:
                self._lag.add(-item[1])
                self._inflight = False
                if not self._queue:
                    self._idle.notify_all()
