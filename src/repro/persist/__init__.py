"""Durable on-disk backup tier: log-structured segment files.

The paper's backups "asynchronously write buffered segments to disk with
the same in-memory format" (Section III). This package is that storage
tier for the live drivers:

* :mod:`repro.persist.segment_file` — append-only ``*.seg`` files
  holding verbatim wire frames behind a fixed file header, with a sparse
  ``*.idx`` sidecar for O(log n) chunk lookup and torn-tail recovery
  (scan, CRC-validate, truncate at the first bad frame, rebuild index);
* :mod:`repro.persist.policy` — the fsync policy knob
  (``never`` / ``interval:<ms>`` / ``bytes:<n>`` / ``always``), the
  dominant durability/throughput trade-off to expose;
* :mod:`repro.persist.flusher` — the per-backup flusher thread that
  keeps the ack path off the disk (ack from buffer, flush async) and
  exports the ``flush_lag_bytes`` gauge;
* :mod:`repro.persist.store` — :class:`SegmentPersistence`, one backup
  node's on-disk state: epoch directories of segment files, policy-driven
  fsync batching, sealed-segment spill to disk, and parallel
  re-ingestion at restart.

Layering: this package depends only on :mod:`repro.wire` and
:mod:`repro.common`. It is **never** imported from sim-reachable code —
the cost-model disk (:mod:`repro.sim.disk`) and the real disk must not
cross (analysis rule A002 enforces the boundary statically).
"""

from repro.persist.policy import FlushMode, FlushPolicy
from repro.persist.segment_file import (
    SEG_FILE_HEADER_SIZE,
    RecoveredSegmentFile,
    SegmentFileMeta,
    SegmentFileReader,
    SegmentFileWriter,
    recover_segment_file,
)
from repro.persist.flusher import BackupFlusher
from repro.persist.store import DiskLoadReport, LoadedSegment, SegmentPersistence

__all__ = [
    "FlushMode",
    "FlushPolicy",
    "SEG_FILE_HEADER_SIZE",
    "SegmentFileMeta",
    "SegmentFileReader",
    "SegmentFileWriter",
    "RecoveredSegmentFile",
    "recover_segment_file",
    "BackupFlusher",
    "SegmentPersistence",
    "DiskLoadReport",
    "LoadedSegment",
]
