"""Discrete-event simulation engine.

A lean, dependency-free implementation of the generator-process model:
processes are Python generators that ``yield`` events; the environment
resumes them when those events fire. The scheduler is a binary heap keyed
by ``(time, sequence)`` so same-time events run in schedule order —
determinism is a hard requirement (every benchmark must be reproducible
bit-for-bit from its seed).

Typical usage::

    env = Environment()

    def worker(env):
        yield env.timeout(1.0)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 1.0 and proc.value == "done"
"""

from __future__ import annotations

import contextlib
import heapq
from collections.abc import Callable, Generator, Iterable
from typing import Any

from repro.common.errors import SimulationError

ProcessGenerator = Generator["Event", Any, Any]

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called
    (its value is then fixed), and *processed* once its callbacks have run.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok = True
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully; callbacks run at the current time."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters have it raised."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        env._schedule(self, delay)


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator may ``yield`` any untriggered (or triggered-but-pending)
    :class:`Event`; it is resumed with the event's value, or has the
    event's exception raised into it if the event failed.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self, env: "Environment", generator: ProcessGenerator, name: str = ""
    ) -> None:
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume on an immediately-scheduled event.
        init = Event(env)
        init.callbacks.append(self._resume)
        init._value = None
        init._ok = True
        env._schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself synchronously")
        # Disarm the event the process is waiting on.
        if self._target is not None and self._target.callbacks is not None:
            with contextlib.suppress(ValueError):
                self._target.callbacks.remove(self._resume)
        self._target = None
        hit = Event(self.env)
        hit.callbacks.append(self._resume)
        hit._value = Interrupt(cause)
        hit._ok = False
        self.env._schedule(hit)

    def _resume(self, event: Event) -> None:
        self._target = None
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                if not self.triggered:
                    self._value = stop.value
                    self._ok = True
                    self.env._schedule(self)
                return
            except BaseException as exc:
                if not self.triggered:
                    self._value = exc
                    self._ok = False
                    self.env._schedule(self)
                    return
                raise
            if not isinstance(target, Event):
                err = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                event = Event(self.env)
                event._value = err
                event._ok = False
                continue
            if target.callbacks is not None:
                # Not yet processed: wait for it.
                target.callbacks.append(self._resume)
                self._target = target
                return
            # Already processed: resume immediately with its outcome.
            event = target


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        for ev in self._events:
            if ev.callbacks is None:
                # Already processed.
                self._check(ev, immediate=True)
            else:
                self._remaining += 1
                ev.callbacks.append(self._on_event)
        self._finalize_if_ready()

    def _on_event(self, ev: Event) -> None:
        self._remaining -= 1
        self._check(ev, immediate=False)

    # Subclasses implement _check/_finalize_if_ready semantics.
    def _check(self, ev: Event, immediate: bool) -> None:  # pragma: no cover
        raise NotImplementedError

    def _finalize_if_ready(self) -> None:  # pragma: no cover
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every child event has fired; fails fast on child failure.

    Succeeds with a list of child values in construction order.
    """

    def _check(self, ev: Event, immediate: bool) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self._value = ev._value
            self._ok = False
            self.env._schedule(self)
            return
        if not immediate and self._remaining == 0:
            self.succeed([e._value for e in self._events])

    def _finalize_if_ready(self) -> None:
        if not self.triggered and self._remaining == 0:
            # All children were already processed successfully.
            for ev in self._events:
                if not ev._ok:
                    self._value = ev._value
                    self._ok = False
                    self.env._schedule(self)
                    return
            self.succeed([e._value for e in self._events])


class AnyOf(Condition):
    """Fires as soon as any child event fires (with that child's outcome)."""

    def _check(self, ev: Event, immediate: bool) -> None:
        if self.triggered:
            return
        if ev._ok:
            self._value = (ev, ev._value)
            self._ok = True
        else:
            self._value = ev._value
            self._ok = False
        self.env._schedule(self)

    def _finalize_if_ready(self) -> None:
        if not self.triggered and self._events:
            for ev in self._events:
                if ev.callbacks is None:
                    self._check(ev, immediate=False)
                    return


class Environment:
    """Holds simulated time and the event heap; drives the simulation."""

    __slots__ = ("_now", "_heap", "_seq", "_active_count")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = initial_time
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError("event already scheduled")
        event._scheduled = True
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        time, _, event = heapq.heappop(self._heap)
        if time < self._now:
            raise SimulationError("scheduler time went backwards")
        self._now = time
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks and not isinstance(event, Process):
            # A failed event nobody waited on: surface it rather than
            # silently dropping a broken invariant.
            raise event._value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the given time, until an event fires, or to quiescence.

        * ``until`` is a number: run events scheduled strictly before it and
          advance ``now`` to it.
        * ``until`` is an event: run until that event has been processed and
          return its value (raising if it failed).
        * ``until`` is ``None``: run until no events remain.
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._heap:
                    raise SimulationError(
                        "deadlock: no scheduled events but the awaited event never fired"
                    )
                self.step()
            if sentinel._ok:
                return sentinel._value
            raise sentinel._value
        if until is None:
            while self._heap:
                self.step()
            return None
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run backwards to {horizon} (now={self._now})")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
