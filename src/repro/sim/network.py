"""Network model: per-node NICs with bandwidth serialization plus latency.

A message from node A to node B costs:

1. serialization on A's transmit side at link bandwidth (messages from the
   same node share the NIC — this is where replication traffic competes
   with produce responses),
2. one-way propagation latency,
3. serialization on B's receive side.

NICs are full duplex: tx and rx are independent resources, as on real
10 GbE hardware. Loopback (A == B) costs only a small in-memory latency —
colocated broker/backup services on one node do not traverse the wire.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.common.errors import SimulationError
from repro.common.units import USEC
from repro.sim.costmodel import CostModel
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource

#: In-memory hand-off latency for same-node messages.
LOOPBACK_LATENCY = 2 * USEC


class Nic:
    """Full-duplex NIC of one node."""

    __slots__ = ("node_id", "tx", "rx")

    def __init__(self, env: Environment, node_id: int) -> None:
        self.node_id = node_id
        self.tx = Resource(env, 1)
        self.rx = Resource(env, 1)


class NetworkModel:
    """All NICs of the cluster plus the transfer cost logic."""

    def __init__(self, env: Environment, num_nodes: int, cost: CostModel) -> None:
        if num_nodes <= 0:
            raise SimulationError("cluster needs at least one node")
        self.env = env
        self.cost = cost
        self.nics = [Nic(env, node) for node in range(num_nodes)]
        self._bytes_sent = 0
        self._messages_sent = 0

    @property
    def num_nodes(self) -> int:
        return len(self.nics)

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    def transfer(
        self, src: int, dst: int, payload_bytes: int
    ) -> Generator[Event, Any, None]:
        """Sub-process that completes when the message has fully arrived."""
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise SimulationError(f"transfer between unknown nodes {src}->{dst}")
        nbytes = self.cost.wire_size(payload_bytes)
        self._bytes_sent += nbytes
        self._messages_sent += 1
        if src == dst:
            yield self.env.timeout(LOOPBACK_LATENCY)
            return
        wire_time = self.cost.transfer_time(nbytes)
        yield from self.nics[src].tx.use(wire_time)
        yield self.env.timeout(self.cost.net_latency)
        yield from self.nics[dst].rx.use(wire_time)
