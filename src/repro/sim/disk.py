"""Secondary-storage model for backup nodes.

Backups asynchronously write buffered segments to disk ``with the same
in-memory format`` (paper, Section III); the producer request path never
waits on the disk, so this model only matters for (a) recovery reads and
(b) verifying that the flush queue keeps up with ingestion. One disk arm
per node: seek overhead plus sequential bandwidth.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.sim.costmodel import CostModel
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource


class DiskModel:
    """A single disk with FIFO scheduling."""

    __slots__ = ("env", "cost", "_arm", "_bytes_written", "_bytes_read", "_flushes")

    def __init__(self, env: Environment, cost: CostModel) -> None:
        self.env = env
        self.cost = cost
        self._arm = Resource(env, 1)
        self._bytes_written = 0
        self._bytes_read = 0
        self._flushes = 0

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    @property
    def bytes_read(self) -> int:
        return self._bytes_read

    @property
    def flush_count(self) -> int:
        return self._flushes

    @property
    def queue_length(self) -> int:
        return self._arm.queue_length

    def _io_time(self, nbytes: int) -> float:
        return self.cost.disk_seek + nbytes / self.cost.disk_bandwidth

    def write(self, nbytes: int) -> Generator[Event, Any, None]:
        """Sub-process: durably write ``nbytes`` (one flush)."""
        self._bytes_written += nbytes
        self._flushes += 1
        yield from self._arm.use(self._io_time(nbytes))

    def read(self, nbytes: int) -> Generator[Event, Any, None]:
        """Sub-process: read ``nbytes`` (recovery path)."""
        self._bytes_read += nbytes
        yield from self._arm.use(self._io_time(nbytes))
