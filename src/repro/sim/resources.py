"""Counted resources and FIFO stores for the simulation engine.

* :class:`Resource` models a pool of identical servers (worker cores, the
  dispatch core, a disk arm): processes ``yield resource.acquire()`` and
  must call :meth:`Resource.release` when done. Grants are strictly FIFO —
  the determinism requirement again.
* :class:`Store` is an unbounded FIFO queue of items with blocking ``get``
  — the shared-memory chunk queues between the producer's source thread
  and requests thread (paper, Figure 6) are Stores.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import Any

from repro.common.errors import SimulationError
from repro.sim.engine import Environment, Event


class Resource:
    """A counted resource with FIFO granting.

    The convenience :meth:`use` wraps acquire → hold ``service_time`` →
    release as a process generator, which is the dominant usage pattern in
    the cluster drivers::

        yield from cpu.use(cost)          # inside another process
    """

    __slots__ = ("env", "capacity", "_in_use", "_waiters", "_stat_busy", "_stat_last")

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # Busy-time accounting for utilization metrics.
        self._stat_busy = 0.0
        self._stat_last = env.now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def _account(self) -> None:
        now = self.env.now
        self._stat_busy += self._in_use * (now - self._stat_last)
        self._stat_last = now

    def utilization(self, elapsed: float) -> float:
        """Average fraction of capacity busy over ``elapsed`` seconds."""
        self._account()
        if elapsed <= 0:
            return 0.0
        return self._stat_busy / (elapsed * self.capacity)

    def reset_stats(self) -> None:
        self._account()
        self._stat_busy = 0.0

    def acquire(self) -> Event:
        """Return an event that fires when a unit is granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a unit; the longest waiter (if any) is granted immediately."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        self._account()
        if self._waiters:
            # Hand the unit straight to the next waiter; _in_use unchanged.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def use(self, service_time: float) -> Generator[Event, Any, None]:
        """acquire → hold for ``service_time`` → release, as a sub-process.

        Fast path: when a unit is free and nobody queues, the grant is
        immediate (no extra scheduler event) — this is the dominant case
        on uncontended client nodes and saves ~25% of all sim events.
        """
        if self._in_use < self.capacity and not self._waiters:
            self._account()
            self._in_use += 1
        else:
            yield self.acquire()
        try:
            yield self.env.timeout(service_time)
        finally:
            self.release()


class Store:
    """Unbounded FIFO queue with blocking ``get``.

    ``put`` never blocks (the paper's producer threads communicate through
    shared memory with recycled chunk buffers; back-pressure comes from the
    closed-loop request path, not from these queues).
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Any:
        """Pop the next item immediately; raise if empty."""
        if not self._items:
            raise SimulationError("get_nowait() on empty store")
        return self._items.popleft()

    def drain(self) -> list[Any]:
        """Remove and return all queued items (non-blocking)."""
        items = list(self._items)
        self._items.clear()
        return items
