"""Calibrated hardware/software cost constants for the cluster simulation.

One Paravance node (the paper's testbed): 16 cores, 128 GB RAM, 10 GbE.
KerA inherits RAMCloud's threading model — one *dispatch* core polling the
network and handing requests to *worker* cores — so a node is modeled as
1 dispatch core + 15 worker cores.

Every constant here is a knob: the defaults were calibrated so that the
simulated cluster lands in the same order of magnitude as the paper's
measurements (1.8–8.3 Mrec/s over 4 brokers) *and* reproduces the relative
shapes (Kafka vs KerA factors, the virtual-log count optimum). See
EXPERIMENTS.md for the calibration record.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.units import GB, USEC


@dataclass(frozen=True)
class CostModel:
    """Hardware and per-operation software costs (all seconds or bytes/s)."""

    # --- node -----------------------------------------------------------
    #: Cores per node (paper: 16).
    cores_per_node: int = 16
    #: Cores devoted to request dispatching (RAMCloud model).
    dispatch_cores: int = 1

    # --- network ----------------------------------------------------------
    #: Effective 10 GbE goodput, bytes/second, full duplex per direction
    #: (TCP/kernel overhead keeps real streaming workloads well under the
    #: 1.25 GB/s line rate).
    link_bandwidth: float = 0.75 * GB
    #: One-way propagation + kernel/NIC latency per message.
    net_latency: float = 20 * USEC
    #: CPU time on the dispatch core to send or receive one RPC message.
    #: This is the resource that saturates when replication degenerates
    #: into many tiny RPCs (the paper's 40-50% drop at high virtual-log
    #: counts, Figures 14-16).
    dispatch_cost: float = 4.0 * USEC
    #: Fixed wire overhead per RPC message (headers, TCP framing).
    rpc_overhead_bytes: int = 128

    # --- broker CPU costs --------------------------------------------------
    #: Worker CPU to validate + append one chunk into a segment.
    chunk_append_cost: float = 1.0 * USEC
    #: Worker CPU to append one chunk *reference* to a virtual segment.
    chunk_ref_cost: float = 0.2 * USEC
    #: Worker CPU per byte of payload memcpy (~12.5 GB/s effective).
    byte_copy_cost: float = 1.0 / (12.5 * GB)
    #: Worker CPU to handle one produce/fetch request (parse, lookup, reply).
    request_handle_cost: float = 2.0 * USEC
    #: Broker worker CPU to stage one chunk into a replication RPC (walk
    #: the reference, locate the physical bytes, build the wire header,
    #: fold the checksum). Serialized per virtual log by the single
    #: in-flight-batch discipline — one virtual log's replication pipeline
    #: therefore caps at ``1 / repl_chunk_send_cost`` chunks/second, which
    #: is why adding 2-4 virtual logs lifts throughput 30-40% in the
    #: paper's Figure 13.
    repl_chunk_send_cost: float = 20.0 * USEC
    #: Broker worker CPU per replication RPC issued (batch bookkeeping).
    repl_batch_send_cost: float = 4.0 * USEC
    #: Worker CPU at a backup to ingest one replicated chunk.
    backup_chunk_cost: float = 3.0 * USEC
    #: Worker CPU at a backup per replication RPC (segment bookkeeping).
    backup_request_cost: float = 5.0 * USEC
    #: Worker CPU to serve one chunk to a consumer (locate + zero-copy ref).
    consumer_chunk_cost: float = 0.5 * USEC

    # --- Kafka baseline costs ---------------------------------------------------
    #: Leader worker CPU per partition examined in a follower fetch
    #: (per-partition log lookup, index bookkeeping — the "too many
    #: headers and indices" overhead of one-log-per-partition designs).
    kafka_fetch_partition_cost: float = 3.0 * USEC
    #: Follower CPU per partition-batch appended to its replica log. Each
    #: partition's data is an *individual small log append* on the
    #: follower — the unconsolidated small I/O the virtual log replaces —
    #: so this mirrors ``repl_chunk_send_cost`` and serializes inside the
    #: single replica fetcher thread of a (follower, leader) pair.
    kafka_replica_batch_cost: float = 28.0 * USEC

    # --- client CPU costs ----------------------------------------------------
    #: Producer source-thread CPU per record (generate, checksum, append
    #: into the chunk buffer) when the working set is small. The effective
    #: per-record cost grows with the number of partitions the producer
    #: round-robins (see ``record_cost_for``): hundreds of open chunk
    #: buffers thrash the cache and lengthen the per-record partition
    #: lookup, which is what pins the paper's many-stream runs at a few
    #: hundred Krec/s per producer while the 32-streamlet runs reach
    #: 1.7 Mrec/s per producer.
    producer_record_cost: float = 0.4 * USEC
    #: Partition count at which the client per-record cost has doubled.
    producer_cache_partitions: int = 64
    #: Producer source-thread CPU per chunk (allocate from the shared
    #: chunk pool, tag, hand off to the requests thread). With hundreds of
    #: partitions and a 1 ms linger, chunks ship nearly empty, so this is
    #: the knob that caps small-chunk per-producer ingestion, exactly as
    #: in the paper's latency-oriented runs.
    producer_source_chunk_cost: float = 1.0 * USEC
    #: Producer requests-thread CPU per chunk gathered into a request
    #: (header bookkeeping, staging into the request buffer). The requests
    #: thread is a single thread per producer: this cost serializes across
    #: all brokers' requests.
    producer_chunk_cost: float = 2.0 * USEC
    #: Producer requests-thread CPU per request (RPC setup).
    producer_request_cost: float = 10.0 * USEC
    #: Consumer source-thread CPU per record iterated.
    consumer_record_cost: float = 0.3 * USEC
    #: Consumer requests-thread CPU per chunk pulled (single thread per
    #: consumer, like the producer's requests thread).
    consumer_pull_chunk_cost: float = 6.0 * USEC

    # --- secondary storage ---------------------------------------------------
    #: Sequential disk bandwidth on backups (bytes/second).
    disk_bandwidth: float = 150e6
    #: Per-flush positioning overhead.
    disk_seek: float = 500 * USEC

    @property
    def worker_cores(self) -> int:
        """Cores left for request processing after dispatch."""
        return self.cores_per_node - self.dispatch_cores

    def scaled(self, **overrides: float) -> "CostModel":
        """Copy with some constants replaced (ablation studies)."""
        return replace(self, **overrides)

    def record_cost_for(self, num_partitions: int) -> float:
        """Effective client per-record CPU for a producer/consumer whose
        working set spans ``num_partitions`` open chunk buffers."""
        return self.producer_record_cost * (
            1.0 + num_partitions / self.producer_cache_partitions
        )

    def wire_size(self, payload_bytes: int) -> int:
        """Bytes on the wire for a message carrying ``payload_bytes``."""
        return payload_bytes + self.rpc_overhead_bytes

    def transfer_time(self, nbytes: int) -> float:
        """Serialization time of ``nbytes`` at link bandwidth."""
        return nbytes / self.link_bandwidth
