"""Deterministic discrete-event simulation substrate.

This package replaces the paper's Grid'5000 testbed (repro band 2/5: we
have neither the cluster nor a language that can push millions of
records/second through real sockets). It provides:

* :mod:`repro.sim.engine` — a seedable, deterministic event engine with
  generator-based processes (a lean re-implementation of the SimPy model:
  events, timeouts, process interrupts, and/all conditions);
* :mod:`repro.sim.resources` — counted resources (CPU worker pools, NIC
  serialization) and FIFO stores (queues between producer threads);
* :mod:`repro.sim.network` — a NIC/latency network model: per-message
  sender and receiver serialization at link bandwidth plus propagation
  delay;
* :mod:`repro.sim.disk` — the backups' secondary storage (asynchronous
  flushes only: the paper's producer path never waits on disk);
* :mod:`repro.sim.costmodel` — the calibrated cost constants (per-RPC
  dispatch cost, per-chunk append cost, memcpy bandwidth, link speed)
  shared by the KerA and Kafka cluster drivers.

Nothing in this package reads the wall clock; two runs with the same seed
produce identical traces.
"""

from repro.sim.engine import (
    Environment,
    Event,
    Process,
    Timeout,
    Interrupt,
    AllOf,
    AnyOf,
)
from repro.sim.resources import Resource, Store
from repro.sim.network import NetworkModel, Nic
from repro.sim.disk import DiskModel
from repro.sim.costmodel import CostModel

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Resource",
    "Store",
    "NetworkModel",
    "Nic",
    "DiskModel",
    "CostModel",
]
