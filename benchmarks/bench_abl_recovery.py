"""Ablation: crash-recovery volume and parallelism vs cluster size.

The paper's future-work section leans on RAMCloud's fast crash recovery:
scattering virtual segments over rotating backup sets lets a crashed
broker's data be read back *in parallel from many backups* and
re-ingested by many new leaders. This ablation recovers one broker on
in-process clusters of 4, 6, and 8 nodes and reports:

* how many backups contributed segments (read parallelism),
* how many survivors received streamlets (re-ingestion parallelism),
* an estimated parallel recovery time from the cost model
  (max per-backup disk read + max per-target re-ingestion CPU),
* the wall-clock of the full logical recovery (pytest-benchmark).
"""

from repro.common.units import KB, fmt_time
from repro.replication.config import ReplicationConfig
from repro.sim.costmodel import CostModel
from repro.storage.config import StorageConfig
from repro.kera import (
    InprocKeraCluster,
    KeraConfig,
    KeraProducer,
    KeraConsumer,
    recover_broker,
)


def build_cluster(num_brokers: int) -> InprocKeraCluster:
    config = KeraConfig(
        num_brokers=num_brokers,
        storage=StorageConfig(segment_size=64 * KB),
        replication=ReplicationConfig(
            replication_factor=3,
            vlogs_per_broker=2,
            # Small virtual segments force frequent rolls, scattering the
            # rotating backup sets across the whole cluster.
            virtual_segment_size=16 * KB,
        ),
        chunk_size=1 * KB,
    )
    cluster = InprocKeraCluster(config)
    cluster.create_stream(0, num_streamlets=4 * num_brokers)
    producer = KeraProducer(cluster, producer_id=0)
    # Keep the per-broker data volume constant as the cluster grows, so
    # the crashed broker always loses a comparable amount.
    for i in range(1_000 * num_brokers):
        producer.send(0, f"r{i:06d}".encode())
    producer.flush()
    return cluster


def estimate_parallel_recovery_time(cluster, failed: int, cost: CostModel) -> float:
    """Cost-model estimate: backups stream the lost segments from disk in
    parallel; target brokers re-ingest and re-replicate in parallel."""
    per_backup_bytes = []
    total_chunks = 0
    for node, backup in cluster.backups.items():
        if node == failed:
            continue
        segments = backup.store.segments_for_broker(failed)
        if segments:
            per_backup_bytes.append(sum(s.bytes_held for s in segments))
            total_chunks += sum(len(s.chunks) for s in segments)
    if not per_backup_bytes:
        return 0.0
    read_time = max(b / cost.disk_bandwidth + cost.disk_seek for b in per_backup_bytes)
    survivors = max(len(cluster.live_broker_ids), 1)
    ingest_time = (total_chunks / survivors) * (
        cost.chunk_append_cost + cost.chunk_ref_cost + cost.repl_chunk_send_cost
    )
    transfer_time = max(per_backup_bytes) / cost.link_bandwidth
    return read_time + transfer_time + ingest_time


def test_abl_recovery(benchmark):
    cost = CostModel()
    rows = []

    def recover_on_4():
        cluster = build_cluster(4)
        estimate = estimate_parallel_recovery_time(cluster, 1, cost)
        report = recover_broker(cluster, failed_broker=1)
        return cluster, report, estimate

    cluster, report, estimate = benchmark.pedantic(recover_on_4, rounds=1, iterations=1)
    rows.append((4, report, estimate))
    for brokers in (6, 8):
        cluster_n = build_cluster(brokers)
        estimate_n = estimate_parallel_recovery_time(cluster_n, 1, cost)
        report_n = recover_broker(cluster_n, failed_broker=1)
        rows.append((brokers, report_n, estimate_n))
        # Data integrity after recovery, at every size.
        records = KeraConsumer(cluster_n, consumer_id=0, stream_ids=[0]).drain()
        assert len(records) == 1_000 * brokers

    print("\n== abl_recovery: crash recovery parallelism vs cluster size")
    print("   paper: virtual segments scatter over rotating backup sets so a "
          "crashed broker recovers in parallel")
    print(f"   {'brokers':>8} | {'backups read':>12} | {'targets':>8} | "
          f"{'chunks':>7} | {'est. parallel recovery':>22}")
    for brokers, rep, est in rows:
        targets = len(set(rep.reassignments.values()))
        print(f"   {brokers:>8} | {rep.backups_read:>12} | {targets:>8} | "
              f"{rep.chunks_recovered:>7} | {fmt_time(est):>22}")
    # More nodes -> more parallelism: several backups feed the recovery
    # and the target fan-out does not shrink as the cluster grows.
    assert all(rep.backups_read >= 2 for _, rep, _ in rows)
    assert len(set(rows[-1][1].reassignments.values())) >= len(
        set(rows[0][1].reassignments.values())
    )
