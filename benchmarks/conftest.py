"""Benchmark-suite plumbing.

Each ``bench_figNN`` module runs one paper figure through the discrete-
event harness (timed once by pytest-benchmark) and registers the series
with the session reporter; the tables are printed in the terminal summary
and saved to ``benchmarks/results/figures.json`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.report import figure_to_dict, format_figure

_RESULTS = []


class FigureReporter:
    def add(self, result) -> None:
        _RESULTS.append(result)


@pytest.fixture(scope="session")
def figures():
    return FigureReporter()


def pytest_terminal_summary(terminalreporter):
    if not _RESULTS:
        return
    terminalreporter.write_sep("=", "reproduced figures (Mrec/s)")
    for result in _RESULTS:
        terminalreporter.write_line(format_figure(result))
        terminalreporter.write_line("")
    out_dir = Path(__file__).parent / "results"
    out_dir.mkdir(exist_ok=True)
    payload = [figure_to_dict(r) for r in _RESULTS]
    (out_dir / "figures.json").write_text(json.dumps(payload, indent=2))
    terminalreporter.write_line(f"series saved to {out_dir / 'figures.json'}")
