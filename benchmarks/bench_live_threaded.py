"""Live-mode throughput: threaded concurrent cluster vs synchronous inproc.

Unlike the ``bench_figNN`` modules this bench runs no simulation: real
producer threads push real bytes through :class:`ThreadedKeraCluster`'s
worker-thread brokers (replication factor 3) and the wall-clock ack
throughput is compared against the single-threaded synchronous driver on
the same workload. It is a smoke-level measurement of the concurrent
runtime, not a paper figure.
"""

import threading
import time

from repro.common.metrics import ThroughputMeter
from repro.common.units import KB, fmt_rate
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import (
    InprocKeraCluster,
    KeraConfig,
    KeraConsumer,
    KeraProducer,
    ThreadedKeraCluster,
)

PRODUCERS = 4
RECORDS_EACH = 3_000
STREAMLETS = 8


def _config():
    return KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
        chunk_size=4 * KB,
    )


def _produce(cluster, producer_id, meter):
    producer = KeraProducer(cluster, producer_id=producer_id)
    for i in range(RECORDS_EACH):
        producer.send(0, f"p{producer_id}-{i:06d}".encode())
        if i % 250 == 249:
            producer.flush()
            meter.add(250, time.monotonic())
    producer.flush()


def _run_threaded():
    meter = ThroughputMeter(thread_safe=True)
    with ThreadedKeraCluster(_config()) as cluster:
        cluster.create_stream(0, STREAMLETS)
        start = time.monotonic()
        threads = [
            threading.Thread(target=_produce, args=(cluster, p, meter))
            for p in range(PRODUCERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.monotonic() - start
        consumed = len(KeraConsumer(cluster, 0, [0]).drain())
    return elapsed, consumed


def _run_inproc():
    meter = ThroughputMeter()
    cluster = InprocKeraCluster(_config())
    cluster.create_stream(0, STREAMLETS)
    start = time.monotonic()
    for p in range(PRODUCERS):
        _produce(cluster, p, meter)
    elapsed = time.monotonic() - start
    consumed = len(KeraConsumer(cluster, 0, [0]).drain())
    return elapsed, consumed


def test_live_threaded(benchmark):
    out = {}

    def sweep():
        out["threaded"] = _run_threaded()
        out["inproc"] = _run_inproc()
        return out

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    total = PRODUCERS * RECORDS_EACH
    print(f"\n== live mode: {PRODUCERS} producers x {RECORDS_EACH} records, "
          f"R3, {STREAMLETS} streamlets (wall clock)")
    for name in ("inproc", "threaded"):
        elapsed, consumed = out[name]
        print(f"   {name:>9}: {fmt_rate(total / elapsed)} ack throughput, "
              f"{consumed} consumed")
        # Correctness before speed: every acked record read back.
        assert consumed == total
