"""Data-path microbenchmarks: encode, build, append, ship, flush.

Measures the ingestion hot path stage by stage on the paper's benchmark
workload (100-byte keyless records batched into 16 KB chunks, 8 MB
segments, replication factor 3) and emits machine-readable JSON suitable
for ``scripts/perf_compare.py``. The acceptance metric for the zero-copy
work is ``encode_append_ship``: records/s through producer encode →
chunk build → broker append → replication ship → backup ingest.

The script deliberately touches only APIs that are stable across
revisions (``encode_records``, ``ChunkBuilder``, ``Segment``,
``KeraBrokerCore.handle_produce``, ``KeraSystem.replicate_request``,
``KeraBackupCore.handle_replicate``), so the same file can be pointed at
an older checkout via ``PYTHONPATH`` to record a baseline run::

    PYTHONPATH=src python benchmarks/bench_datapath.py \
        --label after --out BENCH_datapath.json --append

Run with ``--quick`` in CI for a perf-smoke signal; thresholds are
checked (non-blocking) by ``scripts/perf_compare.py``.
"""

from __future__ import annotations

import argparse
import itertools
import json
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import side of the PYTHONPATH contract
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.kera.backup import KeraBackupCore
from repro.kera.broker import KeraBrokerCore
from repro.kera.messages import (
    FetchPosition,
    FetchRequest,
    ProduceRequest,
    ReplicateRequest,
)
from repro.replication.config import ReplicationConfig
from repro.runtime.system import KeraSystem
from repro.storage.config import StorageConfig
from repro.storage.segment import Segment
from repro.wire.chunk import Chunk, ChunkBuilder
from repro.wire.record import Record, encode_records

MB = 1024 * 1024

#: The paper's workload: 100-byte records (10 B header + 90 B value).
RECORD_SIZE = 100
VALUE_SIZE = 90
CHUNK_CAPACITY = 16 * 1024
RECORDS_PER_CHUNK = CHUNK_CAPACITY // RECORD_SIZE  # 163
SEGMENT_SIZE = 8 * MB
REPLICATION_FACTOR = 3
NODES = [0, 1, 2, 3]


def _record_pool(count: int) -> list[Record]:
    """Distinct keyless records so no stage can cache a single encoding."""
    return [
        Record(value=(b"%08d" % i) + b"\x5a" * (VALUE_SIZE - 8))
        for i in range(count)
    ]


def _measure(fn, *, min_time: float) -> dict:
    """Call ``fn`` (returns ``(units, nbytes)``) until ``min_time`` elapses."""
    fn()  # warmup: first-call table building, allocator growth, caches
    iters = 0
    units = 0.0
    nbytes = 0
    t0 = time.perf_counter()
    while True:
        u, b = fn()
        iters += 1
        units += u
        nbytes += b
        elapsed = time.perf_counter() - t0
        if elapsed >= min_time:
            break
    return {
        "units_per_s": units / elapsed,
        "mb_per_s": nbytes / elapsed / 1e6,
        "seconds": elapsed,
        "iters": iters,
    }


# -- stages -------------------------------------------------------------------


def stage_record_encode(pool: list[Record], batch: int):
    cursor = itertools.cycle(range(0, len(pool) - batch, batch))

    def run():
        start = next(cursor)
        payload = encode_records(pool[start : start + batch])
        return batch, len(payload)

    return run


def stage_chunk_build(pool: list[Record], chunks_per_iter: int):
    builder = ChunkBuilder(
        CHUNK_CAPACITY, stream_id=1, streamlet_id=0, producer_id=7
    )
    seq = itertools.count()
    cursor = itertools.cycle(range(0, len(pool) - RECORDS_PER_CHUNK, 64))

    def run():
        nbytes = 0
        for _ in range(chunks_per_iter):
            start = next(cursor)
            payload = encode_records(pool[start : start + RECORDS_PER_CHUNK])
            assert builder.try_append_encoded(payload, RECORDS_PER_CHUNK)
            chunk = builder.build(next(seq))
            nbytes += chunk.size
        return chunks_per_iter * RECORDS_PER_CHUNK, nbytes

    return run


def _premade_chunks(pool: list[Record], count: int, *, seq0: int = 0) -> list[Chunk]:
    builder = ChunkBuilder(
        CHUNK_CAPACITY, stream_id=1, streamlet_id=0, producer_id=7
    )
    chunks = []
    cursor = itertools.cycle(range(0, len(pool) - RECORDS_PER_CHUNK, 64))
    for i in range(count):
        start = next(cursor)
        builder.try_append_encoded(
            encode_records(pool[start : start + RECORDS_PER_CHUNK]),
            RECORDS_PER_CHUNK,
        )
        chunks.append(builder.build(seq0 + i))
    return chunks


def stage_segment_append(pool: list[Record], chunks_per_iter: int):
    chunks = _premade_chunks(pool, chunks_per_iter)
    nbytes = sum(c.size for c in chunks)
    segment_seq = itertools.count()

    def run():
        segment = Segment(
            stream_id=1,
            streamlet_id=0,
            group_id=3,
            segment_id=next(segment_seq),
            capacity=nbytes,
            materialize=True,
        )
        offset = 0
        for chunk in chunks:
            segment.append(chunk, offset)
            offset += chunk.record_count
        return chunks_per_iter, nbytes

    return run


def _fresh_broker_and_backups():
    storage = StorageConfig(segment_size=SEGMENT_SIZE, materialize=True)
    replication = ReplicationConfig(
        replication_factor=REPLICATION_FACTOR,
        virtual_segment_size=SEGMENT_SIZE,
    )
    broker = KeraBrokerCore(
        broker_id=0,
        nodes=list(NODES),
        storage_config=storage,
        replication_config=replication,
    )
    broker.create_stream(1, [0])
    backups = {
        node: KeraBackupCore(node_id=node, materialize=True)
        for node in NODES
        if node != 0
    }
    return broker, backups


def _pump_replication(broker: KeraBrokerCore, backups: dict) -> None:
    while True:
        batches = broker.collect_batches()
        if not batches:
            return
        for batch in batches:
            request = KeraSystem.replicate_request(0, batch)
            for node in batch.backups:
                backups[node].handle_replicate(request)
            broker.complete_batch(batch)


def stage_replication_ship(pool: list[Record], chunks_per_iter: int):
    """Produce pre-encoded chunks and ship them: append + replicate only.

    Payload bytes and CRCs are precomputed once so the stage isolates the
    broker append → virtual log → RPC → backup ingest path.
    """
    broker, backups = _fresh_broker_and_backups()
    template = _premade_chunks(pool, chunks_per_iter)
    payloads = [(c.payload, c.payload_crc, c.record_count) for c in template]
    seq = itertools.count()
    request_ids = itertools.count(1)
    nbytes = sum(c.size for c in template)

    def run():
        chunks = [
            Chunk(
                stream_id=1,
                streamlet_id=0,
                producer_id=7,
                chunk_seq=next(seq),
                record_count=count,
                payload_len=len(payload),
                payload=payload,
                payload_crc=crc,
            )
            for payload, crc, count in payloads
        ]
        broker.handle_produce(
            ProduceRequest(
                request_id=next(request_ids), producer_id=7, chunks=chunks
            )
        )
        _pump_replication(broker, backups)
        return chunks_per_iter, nbytes

    return run


def stage_backup_flush(pool: list[Record], chunks_per_iter: int, tmpdir: str):
    """Backup ingest + asynchronous disk persistence of full batches."""
    template = _premade_chunks(pool, chunks_per_iter)
    batch_bytes = sum(c.size for c in template)
    core = KeraBackupCore(
        node_id=9,
        materialize=True,
        flush_threshold=batch_bytes,
        disk_dir=tmpdir,
    )
    vseg_ids = itertools.count()

    def run():
        request = ReplicateRequest(
            src_broker=0,
            vlog_id=0,
            vseg_id=next(vseg_ids),
            vseg_capacity=batch_bytes,
            batch_checksum=0,
            chunks=list(template),
        )
        _, flush = core.handle_replicate(request)
        if flush is not None:
            core.persist(flush)
        return chunks_per_iter, batch_bytes

    return run


def stage_encode_append_ship(pool: list[Record], chunks_per_iter: int):
    """The acceptance metric: full producer → broker → backup data path."""
    broker, backups = _fresh_broker_and_backups()
    builder = ChunkBuilder(
        CHUNK_CAPACITY, stream_id=1, streamlet_id=0, producer_id=7
    )
    seq = itertools.count()
    request_ids = itertools.count(1)
    cursor = itertools.cycle(range(0, len(pool) - RECORDS_PER_CHUNK, 64))

    def run():
        chunks = []
        nbytes = 0
        for _ in range(chunks_per_iter):
            start = next(cursor)
            payload = encode_records(pool[start : start + RECORDS_PER_CHUNK])
            builder.try_append_encoded(payload, RECORDS_PER_CHUNK)
            chunk = builder.build(next(seq))
            nbytes += chunk.size
            chunks.append(chunk)
        broker.handle_produce(
            ProduceRequest(
                request_id=next(request_ids), producer_id=7, chunks=chunks
            )
        )
        _pump_replication(broker, backups)
        return chunks_per_iter * RECORDS_PER_CHUNK, nbytes

    return run


def _fetch_field(name: str) -> bool:
    """Whether this checkout's FetchRequest knows ``name`` (the reader-plane
    stages run unchanged against pre-refactor checkouts to record baselines)."""
    import dataclasses

    return any(f.name == name for f in dataclasses.fields(FetchRequest))


def _preloaded_broker(pool: list[Record], n_chunks: int):
    """A broker holding ``n_chunks`` durably-replicated chunks of stream 1."""
    broker, backups = _fresh_broker_and_backups()
    chunks = _premade_chunks(pool, n_chunks)
    broker.handle_produce(
        ProduceRequest(request_id=1, producer_id=7, chunks=chunks)
    )
    _pump_replication(broker, backups)
    return broker


def stage_consume_decode(pool: list[Record], n_chunks: int):
    """The consume path: fetch every durable chunk and decode its records.

    On a pre-refactor checkout the fetch re-encodes stored chunks
    (``to_wire_chunk``: header decode + payload copy) and the consumer
    decodes record by record with per-record CRC verification — the
    seed-era read path. With the reader plane in place the fetch serves
    cached, CRC-validated frame views and the consumer walks lazy record
    views without copying a payload byte.
    """
    broker = _preloaded_broker(pool, n_chunks)
    serve_views = _fetch_field("serve_views")
    request_ids = itertools.count(100)
    position = FetchPosition(stream_id=1, streamlet_id=0, entry=0)
    extra = {"serve_views": True} if serve_views else {}

    def run():
        request = FetchRequest(
            request_id=next(request_ids),
            consumer_id=1,
            positions=[position],
            max_chunks_per_entry=n_chunks,
            **extra,
        )
        response = broker.handle_fetch(request)
        records = 0
        nbytes = 0
        for entry in response.entries:
            for chunk in entry.chunks:
                if serve_views:
                    for rv in chunk.record_views():
                        records += 1
                        nbytes += rv.value_len
                else:
                    for record in chunk.records():
                        records += 1
                        nbytes += len(record.value)
        assert records == n_chunks * RECORDS_PER_CHUNK
        return records, nbytes

    return run


def _fanout_consumer(cluster, consumer_id: int, total_records: int, rates: dict):
    from repro.kera.client import KeraConsumer

    consumer = KeraConsumer(cluster, consumer_id, [1])
    poll = getattr(consumer, "poll_views", None) or consumer.poll_chunks
    read = 0
    t0 = time.perf_counter()
    while read < total_records:
        polled = sum(len(c.records()) for c in poll(64))
        if polled == 0:
            time.sleep(0.001)
        read += polled
    rates[consumer_id] = total_records / (time.perf_counter() - t0)


def _fanout_round(
    cluster, n_consumers: int, total_records: int, id0: int, *, rounds: int = 3
) -> float:
    """Mean per-consumer records/s for ``n_consumers`` concurrent groups,
    each reading the whole stream from a cold fan-out cache.  Best of
    ``rounds`` runs: a single run is one wall-clock sample and scheduler
    jitter swamps the 1-vs-8 comparison."""
    import threading

    best = 0.0
    for round_ in range(rounds):
        for core in cluster.brokers.values():
            cache = getattr(core, "fancache", None)
            if cache is not None:
                cache.clear()
        rates: dict[int, float] = {}
        threads = [
            threading.Thread(
                target=_fanout_consumer,
                args=(cluster, id0 + round_ * 16 + i, total_records, rates),
            )
            for i in range(n_consumers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        best = max(best, sum(rates.values()) / len(rates))
    return best


def run_fanout_serve(*, quick: bool) -> dict[str, dict]:
    """Fan-out serving on the threaded driver: N consumer groups over one
    stream. Reports aggregate throughput at 8 groups and the per-consumer
    scaling from 1 to 8 groups (>= 0.9x is the reader-plane acceptance:
    the shared hot-chunk cache pays validation/decode once per chunk, so
    adding groups adds only cache-hit work)."""
    from repro.kera.config import KeraConfig
    from repro.kera.client import KeraProducer
    from repro.kera.threaded import ThreadedKeraCluster

    n_chunks = 48 if quick else 256
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=SEGMENT_SIZE),
        replication=ReplicationConfig(
            replication_factor=REPLICATION_FACTOR,
            virtual_segment_size=SEGMENT_SIZE,
        ),
        chunk_size=CHUNK_CAPACITY,
    )
    with ThreadedKeraCluster(config) as cluster:
        cluster.create_stream(1, 1)
        producer = KeraProducer(cluster, producer_id=7)
        payload = encode_records(_record_pool(RECORDS_PER_CHUNK))
        total_records = 0
        for built in range(1, n_chunks + 1):
            builder = producer._builder(1, 0)
            assert builder.try_append_encoded(payload, RECORDS_PER_CHUNK)
            producer._seal(1, 0)
            total_records += RECORDS_PER_CHUNK
            if built % 16 == 0:
                producer.flush()
        producer.close()
        per_1 = _fanout_round(cluster, 1, total_records, id0=100)
        per_8 = _fanout_round(cluster, 8, total_records, id0=200)
    scaling = per_8 / per_1 if per_1 else 0.0
    print(
        f"  {'fanout_serve':<22} {per_8 * 8:>14,.0f} records/s "
        f"(8 groups; per-consumer {per_8:,.0f}, 1-group {per_1:,.0f}, "
        f"scaling {scaling:.2f}x)"
    )
    return {
        "fanout_serve": {
            "value": per_8 * 8,
            "unit": "records/s",
            "per_consumer_1": per_1,
            "per_consumer_8": per_8,
            "chunks": n_chunks,
        },
        "fanout_scaling_1_to_8": {"value": scaling, "unit": "x"},
    }


# -- harness ------------------------------------------------------------------


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "-C", str(_REPO_ROOT), "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def run_suite(*, quick: bool) -> dict:
    min_time = 0.08 if quick else 0.4
    chunks_per_iter = 2 if quick else 8
    pool = _record_pool(4096)
    results: dict[str, dict] = {}

    def bench(name: str, fn, unit: str) -> None:
        stats = _measure(fn, min_time=min_time)
        results[name] = {
            "value": stats["units_per_s"],
            "unit": unit,
            "mb_per_s": stats["mb_per_s"],
            "seconds": stats["seconds"],
            "iters": stats["iters"],
        }
        print(
            f"  {name:<22} {stats['units_per_s']:>14,.0f} {unit:<10}"
            f" ({stats['mb_per_s']:8.2f} MB/s, {stats['iters']} iters)"
        )

    print(f"datapath microbenchmarks ({'quick' if quick else 'full'} mode)")
    bench("record_encode", stage_record_encode(pool, 1024), "records/s")
    bench("chunk_build", stage_chunk_build(pool, chunks_per_iter), "records/s")
    bench(
        "segment_append",
        stage_segment_append(pool, max(chunks_per_iter, 32)),
        "chunks/s",
    )
    bench(
        "replication_ship",
        stage_replication_ship(pool, chunks_per_iter),
        "chunks/s",
    )
    with tempfile.TemporaryDirectory(prefix="bench_flush_") as tmpdir:
        bench(
            "backup_flush",
            stage_backup_flush(pool, chunks_per_iter, tmpdir),
            "chunks/s",
        )
    bench(
        "encode_append_ship",
        stage_encode_append_ship(pool, chunks_per_iter),
        "records/s",
    )
    bench(
        "consume_decode",
        stage_consume_decode(pool, 16 if quick else 48),
        "records/s",
    )
    results.update(run_fanout_serve(quick=quick))
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="run", help="name for this run")
    parser.add_argument("--out", default=None, help="write/merge JSON here")
    parser.add_argument(
        "--append",
        action="store_true",
        help="merge into --out instead of overwriting (replaces same label)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="short timings for CI smoke"
    )
    args = parser.parse_args(argv)

    benchmarks = run_suite(quick=args.quick)
    run = {
        "label": args.label,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "quick": args.quick,
        "workload": {
            "record_size": RECORD_SIZE,
            "chunk_capacity": CHUNK_CAPACITY,
            "records_per_chunk": RECORDS_PER_CHUNK,
            "segment_size": SEGMENT_SIZE,
            "replication_factor": REPLICATION_FACTOR,
        },
        "benchmarks": benchmarks,
    }

    if args.out is None:
        print(json.dumps(run, indent=2))
        return 0
    out = Path(args.out)
    doc = {"schema": 1, "runs": []}
    if args.append and out.exists():
        doc = json.loads(out.read_text())
    doc["runs"] = [r for r in doc["runs"] if r["label"] != args.label]
    doc["runs"].append(run)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"saved run '{args.label}' to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
