"""Scaling the number of streams: Kafka vs KerA, R1/R2/R3, chunk 1 KB, 4 producers.

Regenerates the series of the paper's Figure 08 through the discrete-event
cluster harness. Timing of the whole figure run is captured once by
pytest-benchmark; the series themselves are printed in the terminal
summary and saved under ``benchmarks/results/``.
"""

from repro.bench import run_figure


def test_fig08(benchmark, figures):
    result = benchmark.pedantic(lambda: run_figure("fig08"), rounds=1, iterations=1)
    figures.add(result)
    assert result.results, "figure produced no datapoints"
    assert all(pr.result.records_acked > 0 for pr in result.results)
