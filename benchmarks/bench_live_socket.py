"""Live-socket benchmarks: the TCP replication plane and the gateway.

Two faces, matching the other live benches:

* **pytest** (the CI ``socket-smoke`` job): a correctness-asserted smoke
  comparing :class:`SocketKeraCluster` against the shared-memory
  :class:`ProcessKeraCluster` on the same workload, plus the
  1000-connection gateway smoke (zero acked-record loss is asserted, not
  sampled);
* **CLI**: records a ``sockets`` row plus a ``sockets-baseline`` row
  (the same ship harness over the shared-memory ``ProcessTransport``
  ring, measured back to back so the ratio cancels machine speed) into
  ``BENCH_datapath.json`` for ``scripts/perf_compare.py`` —

  - ``replication_ship``: chunks/s through the paper workload's
    replicate path over real TCP (scatter-gather ``sendmsg`` out of
    premade chunk frames, pipelined ``call_async`` with byte-credit
    backpressure, CRC re-validation in the child). Gated within 0.5x
    of the shared-memory row via ``perf_compare.py --baseline
    sockets-baseline --candidate sockets --require replication_ship=0.5``;
  - ``gateway_produce``: records/s acked end-to-end through the asyncio
    gateway across concurrent producer connections;
  - ``produce_p50_ms`` / ``produce_p99_ms``: produce-flush latency
    percentiles alongside the throughput, per the Kafka
    benchmark-practices survey (means hide the tail that production
    systems gate on).

Usage::

    PYTHONPATH=src python benchmarks/bench_live_socket.py \\
        --label sockets --out BENCH_datapath.json --append
    PYTHONPATH=src python -m pytest benchmarks/bench_live_socket.py -q -s
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import platform
import subprocess
import sys
import threading
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import side of the PYTHONPATH contract
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.common.units import KB, MB, fmt_rate
from repro.replication.config import ReplicationConfig
from repro.runtime.socket_transport import SocketServiceSpec, SocketTransport
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, KeraConsumer, KeraProducer
from repro.kera.messages import ReplicateRequest
from repro.kera.process import ProcessBackupWorker, ProcessKeraCluster
from repro.runtime.process import ProcessServiceSpec, ProcessTransport
from repro.kera.socket_cluster import SocketKeraCluster
from repro.gateway import AsyncConsumer, AsyncGatewayClient, AsyncProducer, GatewayServer
from repro.wire.chunk import ChunkBuilder
from repro.wire.record import Record

#: The paper's workload, matching bench_datapath.py.
RECORD_SIZE = 100
VALUE_SIZE = 90
CHUNK_CAPACITY = 16 * 1024
RECORDS_PER_CHUNK = CHUNK_CAPACITY // RECORD_SIZE


def _cluster_config() -> KeraConfig:
    return KeraConfig(
        num_brokers=3,
        storage=StorageConfig(segment_size=1 * MB, q_active_groups=2),
        replication=ReplicationConfig(
            replication_factor=3,
            vlogs_per_broker=2,
            pipeline_depth=4,
            ship_window_bytes=2 * MB,
        ),
        chunk_size=4 * KB,
    )


def _premade_frames(count: int) -> list[bytes]:
    """Sealed 16 KB chunk frames of distinct 100-byte records."""
    builder = ChunkBuilder(CHUNK_CAPACITY, stream_id=1, streamlet_id=0, producer_id=7)
    seq = itertools.count()
    frames = []
    for i in range(count):
        for j in range(RECORDS_PER_CHUNK):
            builder.try_append(
                Record(value=(b"%04d%04d" % (i, j)) + b"\x5a" * (VALUE_SIZE - 8))
            )
        frames.append(builder.build(chunk_seq=next(seq)).wire)
    return frames


def percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(len(sorted_values) * q), len(sorted_values) - 1)
    return sorted_values[index]


# -- replication_ship over TCP ------------------------------------------------


def _ship_transport(kind: str):
    """A started transport with one backup child, for either plane.

    ``sockets`` frames requests over a real TCP connection; ``process``
    moves the same bytes through the shared-memory ring. Both cross an
    address-space boundary, so both children pay the same CRC
    re-validation — the comparison isolates the wire, not the checks.
    """
    worker_kwargs = {"node_id": 9, "materialize": True, "flush_threshold": 1 << 62}
    if kind == "sockets":
        transport = SocketTransport(call_timeout=30.0, write_timeout=30.0)
        transport.register(
            9,
            "backup",
            SocketServiceSpec(
                factory=ProcessBackupWorker,
                kwargs=worker_kwargs,
                window_bytes=8 * MB,
            ),
        )
    elif kind == "process":
        transport = ProcessTransport(call_timeout=30.0, write_timeout=30.0)
        transport.register(
            9,
            "backup",
            ProcessServiceSpec(
                factory=ProcessBackupWorker,
                kwargs=worker_kwargs,
                ring_bytes=8 * MB,
            ),
        )
    else:  # pragma: no cover - caller bug
        raise ValueError(f"unknown transport kind {kind!r}")
    transport.start()
    return transport


def measure_replication_ship(
    *,
    min_time: float,
    transport_kind: str = "sockets",
    chunks_per_batch: int = 16,
    pipeline_depth: int = 8,
) -> dict:
    """Chunks/s through one backup child: premade frames, pipelined acks.

    Mirrors ``bench_datapath.stage_replication_ship`` shape (append →
    ship → backup ingest) with the ship leg crossing a real boundary:
    over ``sockets``, requests leave via vectored ``sendmsg`` straight
    from the frame buffers, the child re-validates CRCs, acks stream
    back as packed 20-byte frames; over ``process``, the identical
    requests cross the shared-memory ring instead.
    """
    transport = _ship_transport(transport_kind)
    try:
        frames = tuple(_premade_frames(chunks_per_batch))
        batch_bytes = sum(len(f) for f in frames)
        vseg_ids = itertools.count()
        in_flight = threading.Semaphore(pipeline_depth)
        errors: list[BaseException] = []
        done_batches = [0]
        done_lock = threading.Lock()

        def on_done(response, error):
            if error is not None:
                errors.append(error)
            with done_lock:
                done_batches[0] += 1
            in_flight.release()

        def ship_one() -> None:
            request = ReplicateRequest(
                src_broker=0,
                vlog_id=0,
                vseg_id=next(vseg_ids),
                vseg_capacity=batch_bytes,
                batch_checksum=0,
                frames=frames,
                frames_verified=True,
            )
            in_flight.acquire()
            transport.call_async(
                0, 9, "backup", "replicate", request, batch_bytes, on_done=on_done
            )

        ship_one()  # warmup: child-side allocator growth, connection ramp
        sent = 1
        t0 = time.perf_counter()
        sent_at_t0 = sent
        while True:
            ship_one()
            sent += 1
            elapsed = time.perf_counter() - t0
            if elapsed >= min_time:
                break
        # Drain the pipeline so the rate counts only acked work.
        for _ in range(pipeline_depth):
            in_flight.acquire()
        elapsed = time.perf_counter() - t0
        if errors:
            raise errors[0]
        batches = sent - sent_at_t0 + 1
        chunks = batches * chunks_per_batch
        return {
            "value": chunks / elapsed,
            "unit": "chunks/s",
            "mb_per_s": batches * batch_bytes / elapsed / 1e6,
            "seconds": elapsed,
            "iters": batches,
        }
    finally:
        transport.shutdown()


# -- gateway produce throughput + latency percentiles -------------------------


async def _gateway_producer(
    host: str,
    port: int,
    pid: int,
    records: int,
    flush_every: int,
    latencies: list[float],
    *,
    pipeline: int = 1,
    linger_ms: float = 0.0,
) -> int:
    # Workload generation is not the system under test: materialize every
    # value up front so the timed windows measure produce, not formatting.
    tail = b"\x5a" * (VALUE_SIZE - 8)
    values = [(b"%03d%05d" % (pid, i)) + tail for i in range(records)]
    async with await AsyncGatewayClient.connect(host, port) as client:
        producer = await AsyncProducer.open(
            client, pid, stream_id=0, max_inflight=pipeline, linger_ms=linger_ms
        )
        for base in range(0, records, flush_every):
            producer.send_many(values[base : base + flush_every])
            start = time.perf_counter()
            await producer.flush()
            latencies.append(time.perf_counter() - start)
        await producer.close()
        return producer.records_sent


async def _drive_gateway(
    host: str,
    port: int,
    *,
    connections: int,
    records: int,
    flush_every: int,
    pipeline: int = 1,
) -> tuple[float, int, list[float]]:
    async with await AsyncGatewayClient.connect(host, port) as admin:
        await admin.create_stream(0, 8)
    # Warmup: one untimed producer round populates the process-wide CRC
    # engine caches (lane/word tables, positional stitch tables for the
    # workload's chunk lengths) and asyncio's machinery, so the timed
    # percentiles measure steady state rather than first-touch setup.
    warm_sent = await _gateway_producer(
        host, port, 999, 2 * flush_every, flush_every, [], pipeline=pipeline
    )
    latencies: list[float] = []
    start = time.monotonic()
    sent = await asyncio.gather(
        *(
            _gateway_producer(
                host, port, pid, records, flush_every, latencies, pipeline=pipeline
            )
            for pid in range(connections)
        )
    )
    elapsed = time.monotonic() - start
    async with await AsyncGatewayClient.connect(host, port) as client:
        consumer = await AsyncConsumer.open(client, 0, stream_id=0)
        consumed = len(await consumer.drain(max_rounds=100_000))
    total = sum(sent)
    if consumed != total + warm_sent:
        raise AssertionError(
            f"acked-record loss: {consumed} consumed of {total + warm_sent} acked"
        )
    latencies.sort()
    return elapsed, total, latencies


def measure_gateway_produce(
    *, connections: int, records: int, flush_every: int = 50, pipeline: int = 1
) -> dict:
    with SocketKeraCluster(_cluster_config(), ack_timeout=30.0) as cluster:
        with GatewayServer(cluster) as gateway:
            host, port = gateway.address()
            elapsed, total, latencies = asyncio.run(
                _drive_gateway(
                    host,
                    port,
                    connections=connections,
                    records=records,
                    flush_every=flush_every,
                    pipeline=pipeline,
                )
            )
    # Latency rows own their sample accounting: `seconds` is time spent
    # inside the timed flushes and `iters` the sample count — NOT the
    # whole run's elapsed/total, which made --history trajectories read
    # as if percentiles had throughput denominators.
    latency_seconds = sum(latencies)
    return {
        "throughput": {
            "value": total / elapsed,
            "unit": "records/s",
            "seconds": elapsed,
            "iters": total,
        },
        "p50_ms": {
            "value": percentile(latencies, 0.50) * 1e3,
            "unit": "ms",
            "seconds": latency_seconds,
            "iters": len(latencies),
            "samples": len(latencies),
        },
        "p99_ms": {
            "value": percentile(latencies, 0.99) * 1e3,
            "unit": "ms",
            "seconds": latency_seconds,
            "iters": len(latencies),
            "samples": len(latencies),
        },
    }


# -- pytest face (CI socket-smoke) --------------------------------------------

PRODUCERS = 4
RECORDS_EACH = 1_500
STREAMLETS = 8


def _produce(cluster, producer_id):
    producer = KeraProducer(cluster, producer_id=producer_id)
    for i in range(RECORDS_EACH):
        producer.send(0, f"p{producer_id}-{i:06d}".encode())
        if i % 250 == 249:
            producer.flush()
    producer.flush()


def _run_cluster_workload(cluster):
    with cluster:
        cluster.create_stream(0, STREAMLETS)
        start = time.monotonic()
        threads = [
            threading.Thread(target=_produce, args=(cluster, p))
            for p in range(PRODUCERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.monotonic() - start
        consumed = len(KeraConsumer(cluster, 0, [0]).drain())
        chunks = sum(b.chunks_ingested for b in cluster.brokers.values())
        backup_chunks = sum(
            cluster.backup_stats(node)["chunks_received"]
            for node in cluster.system.node_ids
        )
    return elapsed, consumed, chunks, backup_chunks


def test_live_socket(benchmark):
    """Socket cluster vs shared-memory process cluster, same workload."""
    out = {}

    def sweep():
        out["process"] = _run_cluster_workload(ProcessKeraCluster(_cluster_config()))
        out["sockets"] = _run_cluster_workload(SocketKeraCluster(_cluster_config()))
        return out

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    total = PRODUCERS * RECORDS_EACH
    print(f"\n== live mode: {PRODUCERS} producers x {RECORDS_EACH} records, "
          f"R3 pipelined (depth 4, 2 MB window), {STREAMLETS} streamlets")
    for name in ("process", "sockets"):
        elapsed, consumed, chunks, backup_chunks = out[name]
        print(f"   {name:>9}: {fmt_rate(total / elapsed)} ack throughput, "
              f"{consumed} consumed, {backup_chunks} backup copies")
        # Correctness before speed: every acked record read back, and
        # every ingested chunk durable on both non-leader replicas.
        assert consumed == total
        assert backup_chunks == 2 * chunks


async def _one_smoke_connection(host: str, port: int, pid: int, records: int) -> int:
    async with await AsyncGatewayClient.connect(host, port) as client:
        producer = AsyncProducer(
            client,
            pid,
            stream_id=0,
            chunk_size=4 * KB,
            streamlet_ids=[0, 1, 2, 3],
        )
        for i in range(records):
            producer.send(f"p{pid}-r{i}".encode())
        await producer.close()
        return producer.records_sent


async def _smoke_1k(host: str, port: int, connections: int, records: int) -> None:
    async with await AsyncGatewayClient.connect(host, port) as admin:
        await admin.create_stream(0, 4)
    sent = await asyncio.gather(
        *(
            _one_smoke_connection(host, port, pid, records)
            for pid in range(connections)
        )
    )
    assert sent == [records] * connections
    async with await AsyncGatewayClient.connect(host, port) as client:
        consumer = await AsyncConsumer.open(client, 0, stream_id=0)
        values = [r.value for r in await consumer.drain(max_rounds=100_000)]
    # Zero acked-record loss, zero duplication, across every connection.
    assert len(values) == connections * records
    assert len(set(values)) == len(values)


def test_gateway_1k_connections():
    """The gateway sustains 1000 concurrent producer connections."""
    import resource

    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    # Each connection is two fds in this single process (client + server
    # end); raise the soft limit toward the hard cap if it would bind.
    needed = 2 * 1000 + 512
    if soft < needed:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(needed, hard), hard))
        soft = resource.getrlimit(resource.RLIMIT_NOFILE)[0]
    connections = 1000 if soft >= needed else max(64, (soft - 512) // 2)
    with SocketKeraCluster(_cluster_config(), ack_timeout=30.0) as cluster:
        with GatewayServer(cluster) as gateway:
            host, port = gateway.address()
            asyncio.run(_smoke_1k(host, port, connections, 10))
            assert gateway.stats.errors_returned == 0
    assert connections >= 1000, (
        f"fd limit allowed only {connections} connections (soft limit {soft})"
    )


async def _one_pipelined_connection(
    host: str, port: int, pid: int, records: int
) -> int:
    async with await AsyncGatewayClient.connect(host, port) as client:
        producer = await AsyncProducer.open(
            client, pid, stream_id=0, max_inflight=4, linger_ms=5.0
        )
        for i in range(records):
            producer.send(f"p{pid}-r{i}".encode())
        await producer.close()  # drains the in-flight window
        return producer.records_sent


async def _smoke_pipelined(
    host: str, port: int, connections: int, records: int
) -> None:
    async with await AsyncGatewayClient.connect(host, port) as admin:
        await admin.create_stream(0, 4)
    sent = await asyncio.gather(
        *(
            _one_pipelined_connection(host, port, pid, records)
            for pid in range(connections)
        )
    )
    assert sent == [records] * connections
    async with await AsyncGatewayClient.connect(host, port) as client:
        consumer = await AsyncConsumer.open(client, 0, stream_id=0)
        values = [r.value for r in await consumer.drain(max_rounds=100_000)]
    assert len(values) == connections * records
    assert len(set(values)) == len(values)


def test_gateway_256_pipelined_produce():
    """256 connections pipelining 4-deep: zero acked-record loss, and the
    in-flight produce gauge proves no thread-per-request parking — its
    peak far exceeds the 16 executor workers while staying bounded by
    connections x max_inflight."""
    import resource

    connections, records, max_inflight = 256, 200, 4
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    needed = 2 * connections + 512
    if soft < needed:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(needed, hard), hard))
    with SocketKeraCluster(_cluster_config(), ack_timeout=30.0) as cluster:
        with GatewayServer(cluster) as gateway:
            host, port = gateway.address()
            asyncio.run(_smoke_pipelined(host, port, connections, records))
            stats = gateway.stats
            assert stats.errors_returned == 0
            # The gauge drained: every accepted produce resolved.
            assert stats.inflight_produces == 0
            # More produces were in flight at once than there are
            # executor threads — impossible under thread-per-request
            # parking, the load-bearing assertion of the async path.
            assert stats.inflight_produces_peak > 16, stats.inflight_produces_peak
            # ...and bounded by what the clients could legally pipeline.
            assert stats.inflight_produces_peak <= connections * max_inflight
        assert cluster.inflight_produce_count() == 0


# -- CLI face -----------------------------------------------------------------


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=_REPO_ROOT,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):  # pragma: no cover
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="sockets", help="name for this run")
    parser.add_argument("--out", default=None, help="write/merge JSON here")
    parser.add_argument(
        "--append",
        action="store_true",
        help="merge into --out instead of overwriting (replaces same label)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="short timings for CI smoke"
    )
    parser.add_argument(
        "--gateway-only",
        action="store_true",
        help="skip the replication_ship rows; record only the gateway stages",
    )
    parser.add_argument(
        "--pipeline",
        type=int,
        default=1,
        metavar="N",
        help="AsyncProducer max_inflight for the gateway run (default 1)",
    )
    args = parser.parse_args(argv)

    min_time = 0.2 if args.quick else 1.0
    connections = 16 if args.quick else 64
    records = 200 if args.quick else 500

    baseline = ship = None
    if not args.gateway_only:
        # The shared-memory ProcessTransport baseline and the TCP
        # candidate are measured back to back with the same harness and
        # workload, so the recorded ratio (the 0.5x acceptance gate) is
        # insensitive to how fast this particular machine happens to be.
        baseline = measure_replication_ship(min_time=min_time, transport_kind="process")
        print(f"replication_ship (shm ring): {baseline['value']:,.0f} chunks/s "
              f"({baseline['mb_per_s']:.1f} MB/s)")
        ship = measure_replication_ship(min_time=min_time, transport_kind="sockets")
        print(f"replication_ship (TCP): {ship['value']:,.0f} chunks/s "
              f"({ship['mb_per_s']:.1f} MB/s, "
              f"{ship['value'] / baseline['value']:.2f}x of shm)")
    gateway = measure_gateway_produce(
        connections=connections, records=records, pipeline=args.pipeline
    )
    print(f"gateway_produce: {gateway['throughput']['value']:,.0f} records/s "
          f"over {connections} connections (pipeline {args.pipeline}); "
          f"produce flush p50 {gateway['p50_ms']['value']:.2f} ms / "
          f"p99 {gateway['p99_ms']['value']:.2f} ms")

    workload = {
        "record_size": RECORD_SIZE,
        "chunk_capacity": CHUNK_CAPACITY,
        "records_per_chunk": RECORDS_PER_CHUNK,
        "replication_factor": 3,
    }
    gateway_benchmarks = {
        "gateway_produce": gateway["throughput"],
        "produce_p50_ms": gateway["p50_ms"],
        "produce_p99_ms": gateway["p99_ms"],
    }
    candidate_run = {
        "label": args.label,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "quick": args.quick,
        "workload": {
            **workload,
            "transport": "tcp-sockets",
            "gateway_connections": connections,
            "produce_pipeline": args.pipeline,
        },
        "benchmarks": dict(gateway_benchmarks),
    }
    runs = [candidate_run]
    if not args.gateway_only:
        assert baseline is not None and ship is not None
        candidate_run["benchmarks"]["replication_ship"] = ship
        runs.insert(
            0,
            {
                "label": f"{args.label}-baseline",
                "git_rev": _git_rev(),
                "python": platform.python_version(),
                "quick": args.quick,
                "workload": {**workload, "transport": "shm-process-ring"},
                "benchmarks": {"replication_ship": baseline},
            },
        )

    if args.out is None:
        print(json.dumps(runs, indent=2))
        return 0
    out = Path(args.out)
    doc = {"schema": 1, "runs": []}
    if args.append and out.exists():
        doc = json.loads(out.read_text())
    replaced = {run["label"] for run in runs}
    doc["runs"] = [r for r in doc["runs"] if r["label"] not in replaced]
    doc["runs"].extend(runs)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out} ({len(doc['runs'])} runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
