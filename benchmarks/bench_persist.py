"""Durable-tier microbenchmarks: fsync policies, async flush, recovery.

Measures what the on-disk backup tier costs on the paper's benchmark
workload (100-byte records, 16 KB chunks, replication factor 3):

* ``seg_flush_<policy>`` — backup ingest + inline segment-file persistence
  under each fsync policy (``never`` / ``bytes:1m`` / ``interval:10`` /
  ``always``), the per-policy write amplification story;
* ``replication_ship`` — the *same* stage bench_datapath.py measures, but
  with every backup persisting through a real flusher thread. Merged into
  ``BENCH_datapath.json`` under the ``persist`` label, it shares a name
  with the in-memory runs so ``scripts/perf_compare.py`` can enforce that
  asynchronous durability does not regress the ack path::

      python scripts/perf_compare.py BENCH_datapath.json \
          --baseline pipelined --candidate persist --max-regression 0.5

* ``disk_recovery`` — chunks/s re-ingested by ``SegmentPersistence.load``
  (torn-tail recovery + decode, files in parallel), plus a printed
  recovery-time-vs-segment-count table.

Emits the same JSON schema as bench_datapath.py::

    PYTHONPATH=src python benchmarks/bench_persist.py \
        --label persist --out BENCH_datapath.json --append
"""

from __future__ import annotations

import argparse
import itertools
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import side of the PYTHONPATH contract
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))
sys.path.insert(0, str(_REPO_ROOT / "benchmarks"))

from bench_datapath import (  # noqa: E402
    CHUNK_CAPACITY,
    RECORD_SIZE,
    RECORDS_PER_CHUNK,
    REPLICATION_FACTOR,
    SEGMENT_SIZE,
    _fresh_broker_and_backups,
    _git_rev,
    _measure,
    _premade_chunks,
    _record_pool,
)
from repro.kera.backup import FlushWork, KeraBackupCore  # noqa: E402
from repro.kera.messages import ProduceRequest, ReplicateRequest  # noqa: E402
from repro.persist import BackupFlusher, SegmentPersistence  # noqa: E402
from repro.runtime.system import KeraSystem  # noqa: E402
from repro.wire.chunk import Chunk  # noqa: E402

FSYNC_POLICIES = ["never", "bytes:1048576", "interval:10", "always"]


def _replicate_request(template, vseg_id: int, batch_bytes: int) -> ReplicateRequest:
    return ReplicateRequest(
        src_broker=0,
        vlog_id=0,
        vseg_id=vseg_id,
        vseg_capacity=batch_bytes,
        batch_checksum=0,
        chunks=list(template),
    )


def stage_seg_flush(pool, chunks_per_iter: int, tmpdir: str, policy: str):
    """Backup ingest + inline persistence under one fsync policy."""
    template = _premade_chunks(pool, chunks_per_iter)
    batch_bytes = sum(c.size for c in template)
    core = KeraBackupCore(
        node_id=9,
        materialize=True,
        flush_threshold=batch_bytes,
        disk_dir=tmpdir,
        fsync_policy=policy,
    )
    vseg_ids = itertools.count()

    def run():
        request = _replicate_request(template, next(vseg_ids), batch_bytes)
        _, flush = core.handle_replicate(request)
        if flush is not None:
            core.persist(flush)
        return chunks_per_iter, batch_bytes

    return run


def stage_ship_with_flusher(pool, chunks_per_iter: int, tmpdir: str):
    """bench_datapath's ``replication_ship``, durability switched on.

    Every backup persists through its own flusher thread (``bytes:1m``
    policy, the live drivers' shape): the measured path still ends at the
    ack, so any slowdown vs the in-memory runs is the cost the durable
    tier puts on the producer's critical path.
    """
    broker, backups = _fresh_broker_and_backups()
    flushers: dict[int, BackupFlusher[FlushWork]] = {}
    for node in list(backups):
        core = KeraBackupCore(
            node_id=node,
            materialize=True,
            flush_threshold=256 * 1024,
            disk_dir=f"{tmpdir}/node{node}",
            fsync_policy="bytes:1048576",
        )
        backups[node] = core
        flushers[node] = BackupFlusher(
            core.persist,
            name=f"bench-flusher-{node}",
            on_tick=core.tick_persistence,
        )
    template = _premade_chunks(pool, chunks_per_iter)
    payloads = [(c.payload, c.payload_crc, c.record_count) for c in template]
    seq = itertools.count()
    request_ids = itertools.count(1)
    nbytes = sum(c.size for c in template)

    def pump() -> None:
        while True:
            batches = broker.collect_batches()
            if not batches:
                return
            for batch in batches:
                request = KeraSystem.replicate_request(0, batch)
                for node in batch.backups:
                    core = backups[node]
                    _, flush = core.handle_replicate(request)
                    works = core.take_sealed_flushes()
                    if flush is not None:
                        works.append(flush)
                    for work in works:
                        flushers[node].submit(work, work.nbytes)
                broker.complete_batch(batch)

    def run():
        chunks = [
            Chunk(
                stream_id=1,
                streamlet_id=0,
                producer_id=7,
                chunk_seq=next(seq),
                record_count=count,
                payload_len=len(payload),
                payload=payload,
                payload_crc=crc,
            )
            for payload, crc, count in payloads
        ]
        broker.handle_produce(
            ProduceRequest(request_id=next(request_ids), producer_id=7, chunks=chunks)
        )
        pump()
        return chunks_per_iter, nbytes

    def cleanup():
        for node, flusher in flushers.items():
            flusher.stop(drain=True)
            backups[node].close_persistence()

    return run, cleanup


def _write_recovery_tree(pool, root: str, files: int, chunks_per_file: int) -> int:
    """One epoch directory of ``files`` closed segment files; returns the
    total chunk count."""
    core = KeraBackupCore(
        node_id=9, materialize=True, flush_threshold=1, disk_dir=root
    )
    for vseg_id in range(files):
        template = _premade_chunks(pool, chunks_per_file, seq0=vseg_id * chunks_per_file)
        batch_bytes = sum(c.size for c in template)
        _, flush = core.handle_replicate(
            _replicate_request(template, vseg_id, batch_bytes)
        )
        if flush is not None:
            core.persist(flush)
    for flush in core.drain_flush():
        core.persist(flush)
    core.close_persistence()
    return files * chunks_per_file


def stage_disk_recovery(pool, root: str, files: int, chunks_per_file: int):
    chunks_total = _write_recovery_tree(pool, root, files, chunks_per_file)

    def run():
        report = SegmentPersistence(root).load(parallel=4)
        assert len(report.segments) == files
        assert report.chunks_loaded == chunks_total
        return chunks_total, chunks_total * CHUNK_CAPACITY

    return run


def recovery_scaling(pool, *, quick: bool) -> None:
    """Print recovery time vs segment count (not part of the JSON)."""
    counts = [4, 16] if quick else [8, 32, 64]
    chunks_per_file = 4 if quick else 8
    print("  recovery time vs segment count:")
    for files in counts:
        with tempfile.TemporaryDirectory(prefix="bench_recover_") as root:
            chunks_total = _write_recovery_tree(pool, root, files, chunks_per_file)
            t0 = time.perf_counter()
            report = SegmentPersistence(root).load(parallel=4)
            elapsed = time.perf_counter() - t0
            assert report.chunks_loaded == chunks_total
            print(
                f"    {files:>4} files / {chunks_total:>5} chunks:"
                f" {elapsed * 1e3:8.2f} ms"
                f" ({chunks_total / elapsed:>12,.0f} chunks/s)"
            )


def run_suite(*, quick: bool) -> dict:
    min_time = 0.08 if quick else 0.4
    chunks_per_iter = 2 if quick else 8
    pool = _record_pool(4096)
    results: dict[str, dict] = {}

    def bench(name: str, fn, unit: str) -> None:
        stats = _measure(fn, min_time=min_time)
        results[name] = {
            "value": stats["units_per_s"],
            "unit": unit,
            "mb_per_s": stats["mb_per_s"],
            "seconds": stats["seconds"],
            "iters": stats["iters"],
        }
        print(
            f"  {name:<22} {stats['units_per_s']:>14,.0f} {unit:<10}"
            f" ({stats['mb_per_s']:8.2f} MB/s, {stats['iters']} iters)"
        )

    print(f"durable-tier microbenchmarks ({'quick' if quick else 'full'} mode)")
    for policy in FSYNC_POLICIES:
        name = f"seg_flush_{policy.split(':')[0]}"
        with tempfile.TemporaryDirectory(prefix="bench_persist_") as tmpdir:
            bench(name, stage_seg_flush(pool, chunks_per_iter, tmpdir, policy), "chunks/s")
    with tempfile.TemporaryDirectory(prefix="bench_persist_") as tmpdir:
        run, cleanup = stage_ship_with_flusher(pool, chunks_per_iter, tmpdir)
        try:
            bench("replication_ship", run, "chunks/s")
        finally:
            cleanup()
    files = 8 if quick else 32
    chunks_per_file = 4 if quick else 8
    with tempfile.TemporaryDirectory(prefix="bench_recover_") as root:
        bench(
            "disk_recovery",
            stage_disk_recovery(pool, root, files, chunks_per_file),
            "chunks/s",
        )
    recovery_scaling(pool, quick=quick)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="persist", help="name for this run")
    parser.add_argument("--out", default=None, help="write/merge JSON here")
    parser.add_argument(
        "--append",
        action="store_true",
        help="merge into --out instead of overwriting (replaces same label)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="short timings for CI smoke"
    )
    args = parser.parse_args(argv)

    benchmarks = run_suite(quick=args.quick)
    run = {
        "label": args.label,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "quick": args.quick,
        "workload": {
            "record_size": RECORD_SIZE,
            "chunk_capacity": CHUNK_CAPACITY,
            "records_per_chunk": RECORDS_PER_CHUNK,
            "segment_size": SEGMENT_SIZE,
            "replication_factor": REPLICATION_FACTOR,
        },
        "benchmarks": benchmarks,
    }

    if args.out is None:
        print(json.dumps(run, indent=2))
        return 0
    out = Path(args.out)
    doc = {"schema": 1, "runs": []}
    if args.append and out.exists():
        doc = json.loads(out.read_text())
    doc["runs"] = [r for r in doc["runs"] if r["label"] != args.label]
    doc["runs"].append(run)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"saved run '{args.label}' to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
