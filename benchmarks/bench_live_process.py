"""Live-mode smoke: process-parallel replication plane vs threaded.

Real producer threads push real bytes through :class:`ProcessKeraCluster`
— every backup core in a worker process behind a shared-memory ring, the
pipelined shipper keeping several batches in flight — and the wall-clock
ack throughput is compared against :class:`ThreadedKeraCluster` on the
same workload and the same pipelined shipping configuration. It is a
smoke-level measurement of the process transport (correctness asserted:
every acked record is durable on both child backups), not a paper
figure; on a single-core runner the threaded driver usually wins because
the rings buy parallelism only when there are spare cores.
"""

import threading
import time

from repro.common.units import KB, MB, fmt_rate
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import (
    KeraConfig,
    KeraConsumer,
    KeraProducer,
    ThreadedKeraCluster,
)
from repro.kera.process import ProcessKeraCluster

PRODUCERS = 4
RECORDS_EACH = 1_500
STREAMLETS = 8


def _config():
    return KeraConfig(
        num_brokers=3,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(
            replication_factor=3,
            vlogs_per_broker=2,
            pipeline_depth=4,
            ship_window_bytes=2 * MB,
        ),
        chunk_size=4 * KB,
    )


def _produce(cluster, producer_id):
    producer = KeraProducer(cluster, producer_id=producer_id)
    for i in range(RECORDS_EACH):
        producer.send(0, f"p{producer_id}-{i:06d}".encode())
        if i % 250 == 249:
            producer.flush()
    producer.flush()


def _run(cluster):
    with cluster:
        cluster.create_stream(0, STREAMLETS)
        start = time.monotonic()
        threads = [
            threading.Thread(target=_produce, args=(cluster, p))
            for p in range(PRODUCERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.monotonic() - start
        consumed = len(KeraConsumer(cluster, 0, [0]).drain())
        chunks = sum(b.chunks_ingested for b in cluster.brokers.values())
        if isinstance(cluster, ProcessKeraCluster):
            backup_chunks = sum(
                cluster.backup_stats(node)["chunks_received"]
                for node in cluster.system.node_ids
            )
        else:
            backup_chunks = sum(
                b.store.chunks_received for b in cluster.backups.values()
            )
    return elapsed, consumed, chunks, backup_chunks


def test_live_process(benchmark):
    out = {}

    def sweep():
        out["threaded"] = _run(ThreadedKeraCluster(_config()))
        out["process"] = _run(ProcessKeraCluster(_config()))
        return out

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    total = PRODUCERS * RECORDS_EACH
    print(f"\n== live mode: {PRODUCERS} producers x {RECORDS_EACH} records, "
          f"R3 pipelined (depth 4, 2 MB window), {STREAMLETS} streamlets")
    for name in ("threaded", "process"):
        elapsed, consumed, chunks, backup_chunks = out[name]
        print(f"   {name:>9}: {fmt_rate(total / elapsed)} ack throughput, "
              f"{consumed} consumed, {backup_chunks} backup copies")
        # Correctness before speed: every acked record read back, and
        # every ingested chunk durable on both non-leader replicas.
        assert consumed == total
        assert backup_chunks == 2 * chunks
