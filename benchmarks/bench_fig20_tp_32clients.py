"""One virtual log per sub-partition, 32 producers + 32 consumers, chunk 4-64 KB.

Regenerates the series of the paper's Figure 20 through the discrete-event
cluster harness. Timing of the whole figure run is captured once by
pytest-benchmark; the series themselves are printed in the terminal
summary and saved under ``benchmarks/results/``.
"""

from repro.bench import run_figure


def test_fig20(benchmark, figures):
    result = benchmark.pedantic(lambda: run_figure("fig20"), rounds=1, iterations=1)
    figures.add(result)
    assert result.results, "figure produced no datapoints"
    assert all(pr.result.records_acked > 0 for pr in result.results)
