"""Static-analysis timing: keep the A001-A008 gate inside its CI budget.

The analysis job blocks merges, so its latency is part of the developer
loop. This bench times the whole-program run over ``src/repro`` —
parse, the five syntactic rules, and the three dataflow rules (A006
view-escape, A007 CFG pool balance, A008 boundary taint) — and splits
out where the time goes:

* ``analysis_full_run`` — complete ``run_analysis`` invocations/s over
  the real tree, all rules. The CI gate enforces an absolute floor of
  0.1 runs/s (a full run must stay under ~10 s)::

      python scripts/perf_compare.py BENCH_analysis.json \
          --baseline baseline --candidate after \
          --require-abs analysis_full_run=0.1

* ``analysis_parse`` — ``load_paths`` only: read + ``ast.parse`` cost;
* ``analysis_dataflow_rules`` — A006+A007+A008 over a pre-parsed tree,
  the CFG/taint share that PR 7 added on top of the syntactic rules.

Emits the same JSON schema as bench_datapath.py::

    PYTHONPATH=src python benchmarks/bench_analysis.py \
        --label after --out BENCH_analysis.json --append
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - import side of the PYTHONPATH contract
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(_REPO_ROOT / "src"))
sys.path.insert(0, str(_REPO_ROOT / "benchmarks"))

from bench_datapath import _git_rev, _measure  # noqa: E402
from repro.analysis import ALL_RULES, run_analysis  # noqa: E402
from repro.analysis.core import load_paths  # noqa: E402

TREE = _REPO_ROOT / "src" / "repro"
DATAFLOW_RULES = ("A006", "A007", "A008")


def stage_full_run():
    def run():
        findings = run_analysis([TREE])
        if findings:  # the gate's contract: the real tree stays clean
            raise SystemExit(f"analysis found {len(findings)} defects in {TREE}")
        return 1, 0

    return run


def stage_parse_only():
    def run():
        modules = load_paths([TREE])
        return 1, sum(len(line) for m in modules for line in m.lines)

    return run


def stage_dataflow_rules():
    modules = load_paths([TREE])

    def run():
        count = 0
        for rule_id in DATAFLOW_RULES:
            _, checker = ALL_RULES[rule_id]
            count += sum(1 for _ in checker(modules))
        return 1, 0

    return run


def run_suite(*, quick: bool) -> dict:
    min_time = 0.5 if quick else 2.0
    results: dict[str, dict] = {}

    def bench(name: str, fn, unit: str) -> None:
        stats = _measure(fn, min_time=min_time)
        results[name] = {
            "value": stats["units_per_s"],
            "unit": unit,
            "seconds": stats["seconds"],
            "iters": stats["iters"],
        }
        print(
            f"  {name:<24} {stats['units_per_s']:>10,.2f} {unit:<8}"
            f" ({stats['seconds'] / stats['iters'] * 1e3:8.1f} ms/run,"
            f" {stats['iters']} iters)"
        )

    print(f"analysis timing over {TREE.relative_to(_REPO_ROOT)}"
          f" ({'quick' if quick else 'full'} mode)")
    bench("analysis_full_run", stage_full_run(), "runs/s")
    bench("analysis_parse", stage_parse_only(), "runs/s")
    bench("analysis_dataflow_rules", stage_dataflow_rules(), "runs/s")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="run", help="name for this run")
    parser.add_argument("--out", default=None, help="write/merge JSON here")
    parser.add_argument(
        "--append",
        action="store_true",
        help="merge into --out instead of overwriting (replaces same label)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="short timings for CI smoke"
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    benchmarks = run_suite(quick=args.quick)
    print(f"  suite finished in {time.perf_counter() - start:.1f}s")
    run = {
        "label": args.label,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "quick": args.quick,
        "workload": {
            "tree": str(TREE.relative_to(_REPO_ROOT)),
            "rules": len(ALL_RULES),
        },
        "benchmarks": benchmarks,
    }

    if args.out is None:
        print(json.dumps(run, indent=2))
        return 0
    out = Path(args.out)
    doc = {"schema": 1, "runs": []}
    if args.append and out.exists():
        doc = json.loads(out.read_text())
    doc["runs"] = [r for r in doc["runs"] if r["label"] != args.label]
    doc["runs"].append(run)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"saved run '{args.label}' to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
