"""Failover benchmark: SIGKILL a broker under live load, time recovery.

Runs the chaos harness (:mod:`repro.failover.chaos`) against a live
cluster — by default the process driver, so the kill is a real
``SIGKILL`` of a worker process and detection flows through transport
liveness — and records the two metrics the failover plane exists to
bound:

* ``recovery_time_ms`` — fence-to-rerouted wall clock for one node
  death (lower is better, unit ``ms``);
* ``failover_throughput_dip`` — fraction of the steady-state ack rate
  lost during the recovery window (lower is better, unit ``frac``);

plus ``failover_parallelism``, the number of recovery lanes observed
running concurrently (must exceed 1: recovery is parallel by design).

The run refuses to record numbers from a broken recovery: any acked
record missing after recovery, or a recovery that errored, aborts with
a non-zero exit instead of producing a flattering datapoint.

Usage::

    PYTHONPATH=src python benchmarks/bench_failover.py \
        --label failover --out BENCH_datapath.json --append

Compare with the lower-is-better semantics::

    python scripts/perf_compare.py BENCH_datapath.json --latency \
        --baseline failover --candidate failover-after \
        --require-abs recovery_time_ms=2000 \
        --require-abs failover_throughput_dip=0.99
"""

import argparse
import json
import platform
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.common.units import KB  # noqa: E402
from repro.failover import FailoverPlane  # noqa: E402
from repro.failover.chaos import run_chaos  # noqa: E402
from repro.replication.config import ReplicationConfig  # noqa: E402
from repro.storage.config import StorageConfig  # noqa: E402
from repro.kera.config import KeraConfig  # noqa: E402


def _config() -> KeraConfig:
    return KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(
            replication_factor=3, vlogs_per_broker=2, pipeline_depth=4
        ),
        chunk_size=4 * KB,
    )


def _make_cluster(driver: str):
    if driver == "threaded":
        from repro.kera.threaded import ThreadedKeraCluster

        return ThreadedKeraCluster(_config())
    if driver == "process":
        from repro.kera.process import ProcessKeraCluster

        return ProcessKeraCluster(_config())
    if driver == "socket":
        from repro.kera.socket_cluster import SocketKeraCluster

        return SocketKeraCluster(_config())
    raise SystemExit(f"unknown driver {driver!r}")


def run_suite(*, quick: bool, driver: str) -> dict:
    warmup = 0.3 if quick else 1.0
    with _make_cluster(driver) as cluster:
        plane = FailoverPlane(cluster, heartbeat_interval=0.05, lease_timeout=1.0)
        with plane:
            result = run_chaos(
                cluster,
                plane,
                producers=8,
                warmup_seconds=warmup,
                post_seconds=warmup / 2,
            )
    report = result.report
    if report is None:
        raise SystemExit("recovery did not complete within the timeout")
    if report.error is not None:
        raise SystemExit(f"recovery failed: {report.error!r}")
    if not result.zero_loss:
        raise SystemExit(
            f"acked-record loss: {len(result.lost)} lost, "
            f"{len(result.duplicated)} duplicated — not recording numbers"
        )
    if result.producer_errors:
        raise SystemExit(f"producers died: {result.producer_errors!r}")
    print(
        f"failover ({driver}, kill={result.kill_mode}): "
        f"{result.acked} acked records all verified, "
        f"{result.retries} retries, "
        f"recovery {result.recovery_ms:.1f} ms, "
        f"parallelism {result.parallelism}, "
        f"dip {result.throughput_dip:.3f}"
    )
    return {
        "recovery_time_ms": {
            "value": result.recovery_ms,
            "unit": "ms",
            "detail": f"{driver} driver, kill={result.kill_mode}, "
            f"{report.chunks_replayed} chunks replayed",
        },
        "failover_throughput_dip": {
            "value": result.throughput_dip,
            "unit": "frac",
            "detail": f"{result.throughput_before:.0f} -> "
            f"{result.throughput_during:.0f} acks/s over the recovery window",
        },
        "failover_parallelism": {
            "value": result.parallelism,
            "unit": "lanes",
            "detail": f"{len(report.lanes)} lanes total",
        },
        "failover_acked_rate": {
            "value": result.throughput_before,
            "unit": "records/s",
            "detail": f"{result.acked} acked across the run",
        },
    }


def _git_rev() -> str:
    try:
        return (
            subprocess.check_output(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                stderr=subprocess.DEVNULL,
            )
            .decode()
            .strip()
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="failover", help="name for this run")
    parser.add_argument("--out", default=None, help="write/merge JSON here")
    parser.add_argument(
        "--append",
        action="store_true",
        help="merge into --out instead of overwriting (replaces same label)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="short warmup for CI smoke"
    )
    parser.add_argument(
        "--driver",
        default="process",
        choices=("threaded", "process", "socket"),
        help="live driver to kill a node of (default: process, real SIGKILL)",
    )
    args = parser.parse_args(argv)

    benchmarks = run_suite(quick=args.quick, driver=args.driver)
    run = {
        "label": args.label,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "quick": args.quick,
        "workload": {
            "driver": args.driver,
            "producers": 8,
            "brokers": 4,
            "replication_factor": 3,
        },
        "benchmarks": benchmarks,
    }

    if args.out is None:
        print(json.dumps(run, indent=2))
        return 0
    out = Path(args.out)
    doc = {"schema": 1, "runs": []}
    if args.append and out.exists():
        doc = json.loads(out.read_text())
    doc["runs"] = [r for r in doc["runs"] if r["label"] != args.label]
    doc["runs"].append(run)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"saved run '{args.label}' to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
