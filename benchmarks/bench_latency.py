"""Produce-acknowledgment latency across configurations.

The paper's discussion (Section V-E) expects ``the latency of small
producer chunks to be similar to RAMCloud's measurements (tens to
hundreds of microseconds)`` without replication, growing with the
replication factor and shrinking with replication capacity (more virtual
logs → shorter group-commit cycles). This bench prints p50/p99 ack
latency for those configurations and checks the orderings.
"""

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, SimKeraCluster
from repro.simdriver import SimWorkload


def run(r: int, vlogs: int, streams: int = 64):
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(materialize=False),
        replication=ReplicationConfig(replication_factor=r, vlogs_per_broker=vlogs),
        chunk_size=1 * KB,
    )
    workload = SimWorkload.many_streams(
        streams, num_producers=4, num_consumers=4, duration=0.1, warmup=0.03
    )
    return SimKeraCluster(config, workload).run()


def test_latency(benchmark):
    rows = []

    def sweep():
        for r, vlogs in ((1, 4), (2, 4), (3, 1), (3, 4), (3, 32)):
            rows.append((r, vlogs, run(r, vlogs)))
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== latency: produce ack latency (64 streams, chunk 1 KB, "
          "4 producers + 4 consumers)")
    print("   paper (V-E): tens-to-hundreds of us for small chunks without "
          "replication; replication adds group-commit cycles")
    print(f"   {'config':>16} | {'p50':>10} | {'p99':>10} | {'Mrec/s':>7}")
    by_key = {}
    for r, vlogs, result in rows:
        lat = result.latency
        by_key[(r, vlogs)] = lat
        print(f"   R{r}, {vlogs:>2} vlogs    | {lat['p50']*1e6:8.1f}us "
              f"| {lat['p99']*1e6:8.1f}us | {result.mrecords_per_sec:7.2f}")

    # R1 acks in the RAMCloud-like regime: tens to hundreds of us.
    assert 10e-6 < by_key[(1, 4)]["p50"] < 1e-3
    # Replication raises ack latency monotonically in R.
    assert by_key[(1, 4)]["p50"] < by_key[(2, 4)]["p50"] < by_key[(3, 4)]["p50"]
    # One shared virtual log has the longest group-commit cycle.
    assert by_key[(3, 1)]["p50"] > by_key[(3, 4)]["p50"]
