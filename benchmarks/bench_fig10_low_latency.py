"""Low-latency configuration: R3, chunk 1 KB; Kafka vs KerA with 4 and 32 virtual logs.

Regenerates the series of the paper's Figure 10 through the discrete-event
cluster harness. Timing of the whole figure run is captured once by
pytest-benchmark; the series themselves are printed in the terminal
summary and saved under ``benchmarks/results/``.
"""

from repro.bench import run_figure


def test_fig10(benchmark, figures):
    result = benchmark.pedantic(lambda: run_figure("fig10"), rounds=1, iterations=1)
    figures.add(result)
    assert result.results, "figure produced no datapoints"
    assert all(pr.result.records_acked > 0 for pr in result.results)
